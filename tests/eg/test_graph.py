"""Tests for the Experiment Graph: union, costs, potentials, warmstarting."""

import numpy as np
import pytest

from repro.dataframe import DataFrame
from repro.eg.graph import ExperimentGraph
from repro.graph.artifacts import ArtifactType, artifact_meta
from repro.graph.dag import WorkloadDAG
from repro.graph.operations import DataOperation, TrainOperation


class Step(DataOperation):
    def __init__(self, tag):
        super().__init__("step", params={"tag": tag})

    def run(self, underlying_data):
        return underlying_data


class Join(DataOperation):
    def __init__(self):
        super().__init__("join")

    def run(self, underlying_data):
        return underlying_data


class Train(TrainOperation):
    def __init__(self, tag):
        super().__init__("train", params={"tag": tag, "model_type": "Fake"})

    def run(self, underlying_data):
        return object()


def executed_chain(times: list[float]) -> WorkloadDAG:
    """source -> v1 -> v2 ... with given compute times."""
    dag = WorkloadDAG()
    current = dag.add_source("s", payload=DataFrame({"x": [1.0]}))
    for index, t in enumerate(times):
        current = dag.add_operation([current], Step(index))
        dag.vertex(current).record_result(DataFrame({"x": [1.0]}), compute_time=t)
    dag.mark_terminal(current)
    return dag


class TestUnion:
    def test_vertices_added(self):
        eg = ExperimentGraph()
        eg.union_workload(executed_chain([1.0, 2.0]))
        assert eg.num_vertices == 3
        assert len(eg.source_ids) == 1

    def test_frequency_increments(self):
        eg = ExperimentGraph()
        eg.union_workload(executed_chain([1.0]))
        eg.union_workload(executed_chain([1.0]))
        for vertex in eg.artifact_vertices():
            assert vertex.frequency == 2

    def test_compute_times_recorded(self):
        eg = ExperimentGraph()
        eg.union_workload(executed_chain([1.5, 2.5]))
        times = sorted(v.compute_time for v in eg.artifact_vertices())
        assert times == [0.0, 1.5, 2.5]

    def test_union_is_incremental(self):
        eg = ExperimentGraph()
        eg.union_workload(executed_chain([1.0]))
        eg.union_workload(executed_chain([1.0, 2.0]))  # extends the chain
        assert eg.num_vertices == 3  # source, step0 (shared), step1 (new)
        assert eg.workloads_observed == 2

    def test_quality_not_clobbered_by_unscored_run(self):
        dag = executed_chain([1.0])
        terminal = dag.terminals[0]
        model_meta = artifact_meta(object())
        dag.vertex(terminal).meta = None  # keep dataset meta for others
        eg = ExperimentGraph()
        eg.union_workload(dag)
        # manually set quality, then union a run without quality
        record = eg.vertex(terminal)
        record.meta = model_meta
        record.meta = record.meta.__class__(
            artifact_type=ArtifactType.MODEL, quality=0.8, model_type="Fake"
        )
        eg.union_workload(executed_chain([1.0]))
        assert eg.vertex(terminal).quality == 0.8


class TestEdgeMetadata:
    def test_edges_record_operation_identity(self):
        eg = ExperimentGraph()
        dag = executed_chain([1.0])
        eg.union_workload(dag)
        terminal = dag.terminals[0]
        (edge,) = list(eg.graph.in_edges(terminal, data=True))
        assert edge[2]["op_name"] == "step"
        assert edge[2]["op_hash"]
        assert edge[2]["op_params"] == {"tag": 0}

    def test_repeat_union_does_not_duplicate_edges(self):
        eg = ExperimentGraph()
        eg.union_workload(executed_chain([1.0]))
        edges_before = eg.graph.number_of_edges()
        eg.union_workload(executed_chain([1.0]))
        assert eg.graph.number_of_edges() == edges_before


class TestRecreationCosts:
    def test_chain_costs_accumulate(self):
        eg = ExperimentGraph()
        eg.union_workload(executed_chain([1.0, 2.0, 4.0]))
        costs = eg.recreation_costs()
        assert sorted(costs.values()) == [0.0, 1.0, 3.0, 7.0]

    def test_shared_ancestor_counted_once(self):
        dag = WorkloadDAG()
        src = dag.add_source("s", payload=DataFrame({"x": [1.0]}))
        a = dag.add_operation([src], Step("a"))
        dag.vertex(a).record_result(DataFrame({"x": [1.0]}), 10.0)
        b = dag.add_operation([a], Step("b"))
        dag.vertex(b).record_result(DataFrame({"x": [1.0]}), 1.0)
        c = dag.add_operation([a], Step("c"))
        dag.vertex(c).record_result(DataFrame({"x": [1.0]}), 1.0)
        d = dag.add_operation([b, c], Join())
        dag.vertex(d).record_result(DataFrame({"x": [1.0]}), 1.0)
        dag.mark_terminal(d)
        eg = ExperimentGraph()
        eg.union_workload(dag)
        # a's 10s must be charged once, not twice through the diamond
        assert eg.recreation_costs()[d] == pytest.approx(13.0)


class TestPotentials:
    def test_ancestors_inherit_best_model_quality(self):
        dag = WorkloadDAG()
        src = dag.add_source("s", payload=DataFrame({"x": [1.0]}))
        feats = dag.add_operation([src], Step("f"))
        dag.vertex(feats).record_result(DataFrame({"x": [1.0]}), 1.0)
        m1 = dag.add_operation([feats], Train("m1"))
        m2 = dag.add_operation([feats], Train("m2"))
        for vid, q in ((m1, 0.6), (m2, 0.9)):
            dag.vertex(vid).record_result(object(), 1.0)
            dag.vertex(vid).meta = artifact_meta(object())
            dag.vertex(vid).meta.artifact_type = ArtifactType.MODEL
            dag.vertex(vid).meta = dag.vertex(vid).meta.with_quality(q)
        dag.mark_terminal(m1)
        dag.mark_terminal(m2)
        eg = ExperimentGraph()
        eg.union_workload(dag)
        potentials = eg.potentials()
        assert potentials[feats] == 0.9
        assert potentials[src] == 0.9
        assert potentials[m1] == 0.6

    def test_vertex_without_reachable_model_has_zero(self):
        eg = ExperimentGraph()
        eg.union_workload(executed_chain([1.0]))
        assert all(p == 0.0 for p in eg.potentials().values())


class TestMaterialization:
    def test_materialize_and_load(self):
        eg = ExperimentGraph()
        dag = executed_chain([1.0])
        eg.union_workload(dag)
        terminal = dag.terminals[0]
        eg.materialize(terminal, dag.vertex(terminal).data)
        assert eg.is_materialized(terminal)
        assert eg.load(terminal) == dag.vertex(terminal).data

    def test_unmaterialize(self):
        eg = ExperimentGraph()
        dag = executed_chain([1.0])
        eg.union_workload(dag)
        terminal = dag.terminals[0]
        eg.materialize(terminal, dag.vertex(terminal).data)
        released = eg.unmaterialize(terminal)
        assert released > 0
        assert not eg.is_materialized(terminal)

    def test_materialized_artifact_bytes_excludes_sources(self):
        eg = ExperimentGraph()
        dag = executed_chain([1.0])
        eg.union_workload(dag)
        source = dag.sources()[0]
        eg.materialize(source, dag.vertex(source).data)
        assert eg.materialized_artifact_bytes() == 0
        assert eg.materialized_artifact_bytes(include_sources=True) > 0


class TestWarmstartCandidates:
    def build(self):
        dag = WorkloadDAG()
        src = dag.add_source("s", payload=DataFrame({"x": [1.0]}))
        feats = dag.add_operation([src], Step("f"))
        dag.vertex(feats).record_result(DataFrame({"x": [1.0]}), 1.0)
        model = dag.add_operation([feats], Train("m"))
        dag.vertex(model).record_result(object(), 1.0)
        meta = artifact_meta(object())
        meta.artifact_type = ArtifactType.MODEL
        meta.model_type = "Fake"
        dag.vertex(model).meta = meta.with_quality(0.7)
        dag.mark_terminal(model)
        eg = ExperimentGraph()
        eg.union_workload(dag)
        return eg, feats, model, dag

    def test_finds_materialized_same_type(self):
        eg, feats, model, dag = self.build()
        eg.materialize(model, dag.vertex(model).data)
        candidates = eg.warmstart_candidates(feats, "Fake")
        assert [c.vertex_id for c in candidates] == [model]

    def test_unmaterialized_excluded(self):
        eg, feats, _model, _dag = self.build()
        assert eg.warmstart_candidates(feats, "Fake") == []

    def test_type_mismatch_excluded(self):
        eg, feats, model, dag = self.build()
        eg.materialize(model, dag.vertex(model).data)
        assert eg.warmstart_candidates(feats, "Other") == []

    def test_unknown_input_returns_empty(self):
        eg, *_ = self.build()
        assert eg.warmstart_candidates("missing", "Fake") == []
