"""Tests for the Updater: source storage, union, reconciliation."""

import numpy as np
import pytest

from repro.dataframe import DataFrame
from repro.eg.graph import ExperimentGraph
from repro.eg.updater import Updater
from repro.graph.dag import WorkloadDAG
from repro.graph.operations import DataOperation
from repro.materialization.simple import MaterializeAll, MaterializeNone


class Step(DataOperation):
    def __init__(self, tag):
        super().__init__("step", params={"tag": tag})

    def run(self, underlying_data):
        return underlying_data


def executed_workload(n_steps: int = 2) -> WorkloadDAG:
    dag = WorkloadDAG()
    current = dag.add_source("src", payload=DataFrame({"x": np.arange(5.0)}))
    for index in range(n_steps):
        current = dag.add_operation([current], Step(index))
        dag.vertex(current).record_result(
            DataFrame({"x": np.arange(5.0) + index}), compute_time=1.0
        )
    dag.mark_terminal(current)
    return dag


class TestUpdater:
    def test_sources_always_stored(self):
        eg = ExperimentGraph()
        updater = Updater(eg, MaterializeNone())
        report = updater.update(executed_workload())
        assert report.new_sources == 1
        source = next(v for v in eg.vertices() if v.is_source)
        assert source.materialized

    def test_sources_stored_once(self):
        eg = ExperimentGraph()
        updater = Updater(eg, MaterializeNone())
        updater.update(executed_workload())
        report = updater.update(executed_workload())
        assert report.new_sources == 0

    def test_materialize_all_stores_everything(self):
        eg = ExperimentGraph()
        updater = Updater(eg, MaterializeAll())
        report = updater.update(executed_workload(3))
        assert len(report.newly_materialized) == 3
        assert eg.materialized_artifact_bytes() > 0

    def test_materialize_none_stores_nothing_but_sources(self):
        eg = ExperimentGraph()
        updater = Updater(eg, MaterializeNone())
        updater.update(executed_workload(3))
        materialized = [eg.vertex(v) for v in eg.materialized_ids()]
        assert all(v.is_source for v in materialized)

    def test_meta_kept_for_unmaterialized(self):
        """EG keeps meta-data of ALL artifacts even when content is dropped."""
        eg = ExperimentGraph()
        updater = Updater(eg, MaterializeNone())
        updater.update(executed_workload(2))
        for vertex in eg.artifact_vertices():
            if not vertex.is_source:
                assert vertex.meta is not None
                assert not vertex.materialized

    def test_eviction_on_strategy_change(self):
        eg = ExperimentGraph()
        Updater(eg, MaterializeAll()).update(executed_workload(2))
        report = Updater(eg, MaterializeNone()).update(executed_workload(2))
        assert len(report.evicted) == 2
        assert eg.materialized_artifact_bytes() == 0

    def test_store_bytes_reported(self):
        eg = ExperimentGraph()
        report = Updater(eg, MaterializeAll()).update(executed_workload())
        assert report.store_bytes_after == eg.store.total_bytes > 0

    def test_frequencies_after_repeat(self):
        eg = ExperimentGraph()
        updater = Updater(eg, MaterializeAll())
        updater.update(executed_workload())
        updater.update(executed_workload())
        non_source = [v for v in eg.artifact_vertices() if not v.is_source]
        assert all(v.frequency == 2 for v in non_source)
