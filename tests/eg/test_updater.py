"""Tests for the Updater: source storage, union, batching, conflicts."""

import numpy as np
import pytest

from repro.dataframe import DataFrame
from repro.eg.graph import ExperimentGraph
from repro.eg.storage import ArtifactDivergenceError
from repro.eg.updater import Updater
from repro.graph.dag import WorkloadDAG
from repro.graph.operations import DataOperation
from repro.materialization.simple import MaterializeAll, MaterializeNone


class Step(DataOperation):
    def __init__(self, tag):
        super().__init__("step", params={"tag": tag})

    def run(self, underlying_data):
        return underlying_data


def executed_workload(n_steps: int = 2) -> WorkloadDAG:
    dag = WorkloadDAG()
    current = dag.add_source("src", payload=DataFrame({"x": np.arange(5.0)}))
    for index in range(n_steps):
        current = dag.add_operation([current], Step(index))
        dag.vertex(current).record_result(
            DataFrame({"x": np.arange(5.0) + index}), compute_time=1.0
        )
    dag.mark_terminal(current)
    return dag


class TestUpdater:
    def test_sources_always_stored(self):
        eg = ExperimentGraph()
        updater = Updater(eg, MaterializeNone())
        report = updater.update(executed_workload())
        assert report.new_sources == 1
        source = next(v for v in eg.vertices() if v.is_source)
        assert source.materialized

    def test_sources_stored_once(self):
        eg = ExperimentGraph()
        updater = Updater(eg, MaterializeNone())
        updater.update(executed_workload())
        report = updater.update(executed_workload())
        assert report.new_sources == 0

    def test_materialize_all_stores_everything(self):
        eg = ExperimentGraph()
        updater = Updater(eg, MaterializeAll())
        report = updater.update(executed_workload(3))
        assert len(report.newly_materialized) == 3
        assert eg.materialized_artifact_bytes() > 0

    def test_materialize_none_stores_nothing_but_sources(self):
        eg = ExperimentGraph()
        updater = Updater(eg, MaterializeNone())
        updater.update(executed_workload(3))
        materialized = [eg.vertex(v) for v in eg.materialized_ids()]
        assert all(v.is_source for v in materialized)

    def test_meta_kept_for_unmaterialized(self):
        """EG keeps meta-data of ALL artifacts even when content is dropped."""
        eg = ExperimentGraph()
        updater = Updater(eg, MaterializeNone())
        updater.update(executed_workload(2))
        for vertex in eg.artifact_vertices():
            if not vertex.is_source:
                assert vertex.meta is not None
                assert not vertex.materialized

    def test_eviction_on_strategy_change(self):
        eg = ExperimentGraph()
        Updater(eg, MaterializeAll()).update(executed_workload(2))
        report = Updater(eg, MaterializeNone()).update(executed_workload(2))
        assert len(report.evicted) == 2
        assert eg.materialized_artifact_bytes() == 0

    def test_store_bytes_reported(self):
        eg = ExperimentGraph()
        report = Updater(eg, MaterializeAll()).update(executed_workload())
        assert report.store_bytes_after == eg.store.total_bytes > 0

    def test_frequencies_after_repeat(self):
        eg = ExperimentGraph()
        updater = Updater(eg, MaterializeAll())
        updater.update(executed_workload())
        updater.update(executed_workload())
        non_source = [v for v in eg.artifact_vertices() if not v.is_source]
        assert all(v.frequency == 2 for v in non_source)


def divergent_workload(columns=("x", "zzz"), size_shift=0.0) -> WorkloadDAG:
    """Same vertex ids as ``executed_workload`` but different payload shape."""
    dag = WorkloadDAG()
    current = dag.add_source("src", payload=DataFrame({"x": np.arange(5.0)}))
    for index in range(2):
        current = dag.add_operation([current], Step(index))
        frame = DataFrame({name: np.arange(5.0) + size_shift for name in columns})
        dag.vertex(current).record_result(frame, compute_time=1.0)
    dag.mark_terminal(current)
    return dag


class TestBatchUpdater:
    def test_batch_equivalent_to_sequential(self):
        """One batched pass must produce the same EG as N single updates."""
        sequential = ExperimentGraph()
        seq_updater = Updater(sequential, MaterializeAll())
        batched = ExperimentGraph()
        batch_updater = Updater(batched, MaterializeAll())

        workloads = [executed_workload(n) for n in (1, 3, 2)]
        for workload in workloads:
            seq_updater.update(workload)
        report = batch_updater.update_batch([executed_workload(n) for n in (1, 3, 2)])

        assert report.merged_workloads == 3
        assert report.rejected_workloads == 0
        assert batched.num_vertices == sequential.num_vertices
        assert batched.materialized_ids() == sequential.materialized_ids()
        assert batched.store.total_bytes == sequential.store.total_bytes
        for vertex in sequential.artifact_vertices():
            assert batched.vertex(vertex.vertex_id).frequency == vertex.frequency

    def test_batch_single_materialization_outcomes(self):
        eg = ExperimentGraph()
        report = Updater(eg, MaterializeAll()).update_batch(
            [executed_workload(2), executed_workload(2)]
        )
        assert report.outcomes == [1, 0]  # second workload adds no new source
        assert report.new_sources == 1

    def test_column_conflict_rejected(self):
        eg = ExperimentGraph()
        updater = Updater(eg, MaterializeAll())
        updater.update(executed_workload(2))
        with pytest.raises(ArtifactDivergenceError, match="columns"):
            updater.update(divergent_workload())

    def test_size_conflict_rejected(self):
        eg = ExperimentGraph()
        updater = Updater(eg, MaterializeAll())
        updater.update(executed_workload(2))
        # same columns, different frame length: the size check must fire
        dag = WorkloadDAG()
        current = dag.add_source("src", payload=DataFrame({"x": np.arange(5.0)}))
        for index in range(2):
            current = dag.add_operation([current], Step(index))
            dag.vertex(current).record_result(
                DataFrame({"x": np.arange(9.0)}), compute_time=1.0
            )
        dag.mark_terminal(current)
        with pytest.raises(ArtifactDivergenceError, match="bytes"):
            updater.update(dag)

    def test_conflicting_workload_rejected_from_batch_others_merge(self):
        eg = ExperimentGraph()
        updater = Updater(eg, MaterializeAll())
        updater.update(executed_workload(2))
        before = eg.workloads_observed
        report = updater.update_batch([divergent_workload(), executed_workload(3)])
        assert report.rejected_workloads == 1
        assert report.merged_workloads == 1
        assert isinstance(report.outcomes[0], ArtifactDivergenceError)
        assert report.outcomes[1] == 0
        # the rejected workload contributed nothing
        assert eg.workloads_observed == before + 1

    def test_intra_batch_conflict_detected(self):
        """The second workload conflicts with the first one *of the batch*."""
        eg = ExperimentGraph()
        report = Updater(eg, MaterializeAll()).update_batch(
            [executed_workload(2), divergent_workload()]
        )
        assert report.merged_workloads == 1
        assert isinstance(report.outcomes[1], ArtifactDivergenceError)

    def test_custom_evictor_receives_deselections(self):
        eg = ExperimentGraph()
        Updater(eg, MaterializeAll()).update(executed_workload(2))
        evicted: list[str] = []

        def evictor(vertex_id: str) -> int:
            evicted.append(vertex_id)
            return eg.store.remove(vertex_id)

        report = Updater(eg, MaterializeNone()).update_batch(
            [executed_workload(2)], evict=evictor
        )
        assert sorted(evicted) == sorted(report.evicted)
        assert len(evicted) == 2
        # the updater cleared the flags itself; the evictor only removed content
        assert all(not eg.vertex(v).materialized for v in evicted)
