"""Tests for Experiment Graph save/load."""

import json
import pickle

import numpy as np
import pytest

from repro.dataframe import DataFrame
from repro.eg.graph import ExperimentGraph
from repro.eg.persistence import EGPersistenceError, load_eg, save_eg
from repro.eg.storage import DedupArtifactStore, StorageTier
from repro.eg.updater import Updater
from repro.graph.dag import WorkloadDAG
from repro.graph.operations import DataOperation
from repro.materialization.simple import MaterializeAll
from repro.storage import TieredArtifactStore


class Step(DataOperation):
    def __init__(self, tag):
        super().__init__("step", params={"tag": tag})

    def run(self, underlying_data):
        return underlying_data


def populated_eg(store=None) -> ExperimentGraph:
    dag = WorkloadDAG()
    current = dag.add_source("src", payload=DataFrame({"x": np.arange(6.0)}))
    for index in range(3):
        current = dag.add_operation([current], Step(index))
        dag.vertex(current).record_result(
            DataFrame({"x": np.arange(6.0) + index}), compute_time=float(index + 1)
        )
    dag.mark_terminal(current)
    eg = ExperimentGraph(store)
    Updater(eg, MaterializeAll()).update(dag)
    return eg


class TestPersistence:
    def test_roundtrip_structure(self, tmp_path):
        eg = populated_eg()
        save_eg(eg, tmp_path)
        restored = load_eg(tmp_path)
        assert restored.num_vertices == eg.num_vertices
        assert restored.source_ids == eg.source_ids
        assert restored.workloads_observed == eg.workloads_observed
        assert set(restored.graph.edges) == set(eg.graph.edges)

    def test_roundtrip_vertex_attributes(self, tmp_path):
        eg = populated_eg()
        save_eg(eg, tmp_path)
        restored = load_eg(tmp_path)
        for vertex in eg.vertices():
            twin = restored.vertex(vertex.vertex_id)
            assert twin.frequency == vertex.frequency
            assert twin.compute_time == vertex.compute_time
            assert twin.size == vertex.size
            assert twin.materialized == vertex.materialized
            assert twin.last_seen == vertex.last_seen

    def test_last_seen_tracks_latest_workload(self, tmp_path):
        # two unions stamp different last_seen indices; both must survive
        eg = populated_eg()
        dag = WorkloadDAG()
        current = dag.add_source("src", payload=DataFrame({"x": np.arange(6.0)}))
        current = dag.add_operation([current], Step(0))
        dag.vertex(current).record_result(
            DataFrame({"x": np.arange(6.0)}), compute_time=1.0
        )
        dag.mark_terminal(current)
        Updater(eg, MaterializeAll()).update(dag)
        assert len({v.last_seen for v in eg.vertices()}) > 1
        save_eg(eg, tmp_path)
        restored = load_eg(tmp_path)
        for vertex in eg.vertices():
            assert restored.vertex(vertex.vertex_id).last_seen == vertex.last_seen

    def test_document_without_last_seen_loads_as_zero(self, tmp_path):
        # v2 documents written before last_seen was persisted stay readable
        eg = populated_eg()
        save_eg(eg, tmp_path)
        graph_path = tmp_path / "graph.json"
        document = json.loads(graph_path.read_text())
        for record in document["vertices"]:
            del record["last_seen"]
        graph_path.write_text(json.dumps(document))
        restored = load_eg(tmp_path)
        assert all(v.last_seen == 0 for v in restored.vertices())

    def test_roundtrip_store_contents(self, tmp_path):
        eg = populated_eg()
        save_eg(eg, tmp_path)
        restored = load_eg(tmp_path)
        for vertex_id in eg.materialized_ids():
            assert restored.load(vertex_id) == eg.load(vertex_id)

    def test_roundtrip_dedup_store(self, tmp_path):
        eg = populated_eg(store=DedupArtifactStore())
        save_eg(eg, tmp_path)
        restored = load_eg(tmp_path)
        assert isinstance(restored.store, DedupArtifactStore)
        assert restored.store.total_bytes == eg.store.total_bytes

    def test_restored_eg_supports_planning(self, tmp_path):
        from repro.reuse import LinearReuse

        eg = populated_eg()
        save_eg(eg, tmp_path)
        restored = load_eg(tmp_path)
        dag = WorkloadDAG()
        current = dag.add_source("src", payload=DataFrame({"x": np.arange(6.0)}))
        for index in range(3):
            current = dag.add_operation([current], Step(index))
        dag.mark_terminal(current)
        plan = LinearReuse().plan(dag, restored)
        assert plan.loads  # the materialized chain is found

    def test_version_check(self, tmp_path):
        eg = populated_eg()
        save_eg(eg, tmp_path)
        graph_file = tmp_path / "graph.json"
        document = json.loads(graph_file.read_text())
        document["version"] = 99
        graph_file.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="version"):
            load_eg(tmp_path)

    def test_dedup_preserved_after_reload(self, tmp_path):
        # two workloads sharing the source column: the dedup store holds the
        # shared column once, and reloading must not inflate it back
        eg = populated_eg(store=DedupArtifactStore())
        dag = WorkloadDAG()
        source = dag.add_source("src", payload=DataFrame({"x": np.arange(6.0)}))
        # two steps whose outputs share the same columns (same lineage
        # ids), so the dedup store holds them once
        shared = DataFrame({"x": np.arange(6.0) * 2})
        for tag in ("left", "right"):
            step = dag.add_operation([source], Step(tag))
            dag.vertex(step).record_result(shared, compute_time=1.0)
            dag.mark_terminal(step)
        Updater(eg, MaterializeAll()).update(dag)
        assert eg.store.total_bytes < eg.store.logical_bytes

        save_eg(eg, tmp_path)
        restored = load_eg(tmp_path)
        assert restored.store.total_bytes == eg.store.total_bytes
        assert restored.store.logical_bytes == eg.store.logical_bytes
        # shared columns serialized once on disk: one .npy per distinct
        # lineage id, not one per (vertex, column)
        column_files = list((tmp_path / "store" / "columns").glob("*.npy"))
        distinct_ids = {
            cid
            for layout in eg.store._frame_layout.values()
            for _name, cid in layout
        }
        assert len(column_files) == len(distinct_ids)

    def test_tiered_store_reopens_in_place(self, tmp_path):
        store_dir = tmp_path / "egdir"
        eg = populated_eg(store=TieredArtifactStore())
        save_eg(eg, store_dir)
        restored = load_eg(store_dir)
        assert isinstance(restored.store, TieredArtifactStore)
        # reopened lazily: everything cold, nothing in RAM yet
        assert restored.store.hot_bytes == 0
        for vertex_id in restored.store.vertex_ids:
            assert restored.store.tier_of(vertex_id) is StorageTier.COLD
        # contents still byte-identical, and reading promotes
        for vertex_id in eg.materialized_ids():
            assert restored.load(vertex_id) == eg.load(vertex_id)
        assert restored.store.stats.promotions > 0

    def test_missing_directory(self, tmp_path):
        with pytest.raises(EGPersistenceError) as excinfo:
            load_eg(tmp_path / "nowhere")
        assert excinfo.value.path == tmp_path / "nowhere" / "graph.json"

    def test_corrupt_graph_json(self, tmp_path):
        eg = populated_eg()
        save_eg(eg, tmp_path)
        (tmp_path / "graph.json").write_text("{not json")
        with pytest.raises(EGPersistenceError, match="corrupt"):
            load_eg(tmp_path)

    def test_missing_manifest(self, tmp_path):
        eg = populated_eg()
        save_eg(eg, tmp_path)
        (tmp_path / "store" / "manifest.json").unlink()
        with pytest.raises(EGPersistenceError, match="manifest"):
            load_eg(tmp_path)

    def test_truncated_graph_document(self, tmp_path):
        eg = populated_eg()
        save_eg(eg, tmp_path)
        graph_file = tmp_path / "graph.json"
        document = json.loads(graph_file.read_text())
        del document["vertices"][0]["frequency"]
        graph_file.write_text(json.dumps(document))
        with pytest.raises(EGPersistenceError, match="corrupt"):
            load_eg(tmp_path)

    def test_legacy_v1_roundtrip(self, tmp_path):
        # a v1 directory (whole store pickled as store.pkl) still loads
        eg = populated_eg()
        save_eg(eg, tmp_path)
        graph_file = tmp_path / "graph.json"
        document = json.loads(graph_file.read_text())
        document["version"] = 1
        graph_file.write_text(json.dumps(document))
        with (tmp_path / "store.pkl").open("wb") as handle:
            pickle.dump(eg.store, handle)
        restored = load_eg(tmp_path)
        for vertex_id in eg.materialized_ids():
            assert restored.load(vertex_id) == eg.load(vertex_id)

    def test_legacy_v1_missing_pickle(self, tmp_path):
        eg = populated_eg()
        save_eg(eg, tmp_path)
        graph_file = tmp_path / "graph.json"
        document = json.loads(graph_file.read_text())
        document["version"] = 1
        graph_file.write_text(json.dumps(document))
        with pytest.raises(EGPersistenceError) as excinfo:
            load_eg(tmp_path)
        assert excinfo.value.path == tmp_path / "store.pkl"

    def test_legacy_v1_corrupt_pickle(self, tmp_path):
        eg = populated_eg()
        save_eg(eg, tmp_path)
        graph_file = tmp_path / "graph.json"
        document = json.loads(graph_file.read_text())
        document["version"] = 1
        graph_file.write_text(json.dumps(document))
        (tmp_path / "store.pkl").write_bytes(b"\x80\x04 garbage")
        with pytest.raises(EGPersistenceError, match="corrupt"):
            load_eg(tmp_path)

    def test_quality_survives(self, tmp_path):
        eg = populated_eg()
        vertex = next(v for v in eg.artifact_vertices() if not v.is_source)
        from repro.graph.artifacts import ArtifactMeta, ArtifactType

        vertex.meta = ArtifactMeta(
            artifact_type=ArtifactType.MODEL, quality=0.77, model_type="Fake"
        )
        save_eg(eg, tmp_path)
        restored = load_eg(tmp_path)
        assert restored.vertex(vertex.vertex_id).quality == 0.77


class TestHotBudgetRoundTrip:
    """The hot-tier RAM budget must survive a save/load cycle.

    Regression guard: the generic ``_save_store`` branch used to hardcode
    ``"hot_budget_bytes": None`` in the manifest, silently discarding the
    budget of any budget-carrying store routed through it.
    """

    def test_tiered_budget_survives_roundtrip(self, tmp_path):
        eg = populated_eg(store=TieredArtifactStore(hot_budget_bytes=5000))
        save_eg(eg, tmp_path)
        restored = load_eg(tmp_path)
        assert restored.store.hot_budget_bytes == 5000

    def test_generic_branch_records_store_budget(self, tmp_path):
        store = DedupArtifactStore()
        # any store that happens to carry a budget attribute must have it
        # recorded, not clobbered with null
        store.hot_budget_bytes = 4096
        eg = populated_eg(store=store)
        save_eg(eg, tmp_path)
        manifest = json.loads((tmp_path / "store" / "manifest.json").read_text())
        assert manifest["hot_budget_bytes"] == 4096

    def test_generic_branch_defaults_to_null_budget(self, tmp_path):
        eg = populated_eg(store=DedupArtifactStore())
        save_eg(eg, tmp_path)
        manifest = json.loads((tmp_path / "store" / "manifest.json").read_text())
        assert manifest["hot_budget_bytes"] is None
