"""Tests for Experiment Graph save/load."""

import numpy as np
import pytest

from repro.dataframe import DataFrame
from repro.eg.graph import ExperimentGraph
from repro.eg.persistence import load_eg, save_eg
from repro.eg.storage import DedupArtifactStore
from repro.eg.updater import Updater
from repro.graph.dag import WorkloadDAG
from repro.graph.operations import DataOperation
from repro.materialization.simple import MaterializeAll


class Step(DataOperation):
    def __init__(self, tag):
        super().__init__("step", params={"tag": tag})

    def run(self, underlying_data):
        return underlying_data


def populated_eg(store=None) -> ExperimentGraph:
    dag = WorkloadDAG()
    current = dag.add_source("src", payload=DataFrame({"x": np.arange(6.0)}))
    for index in range(3):
        current = dag.add_operation([current], Step(index))
        dag.vertex(current).record_result(
            DataFrame({"x": np.arange(6.0) + index}), compute_time=float(index + 1)
        )
    dag.mark_terminal(current)
    eg = ExperimentGraph(store)
    Updater(eg, MaterializeAll()).update(dag)
    return eg


class TestPersistence:
    def test_roundtrip_structure(self, tmp_path):
        eg = populated_eg()
        save_eg(eg, tmp_path)
        restored = load_eg(tmp_path)
        assert restored.num_vertices == eg.num_vertices
        assert restored.source_ids == eg.source_ids
        assert restored.workloads_observed == eg.workloads_observed
        assert set(restored.graph.edges) == set(eg.graph.edges)

    def test_roundtrip_vertex_attributes(self, tmp_path):
        eg = populated_eg()
        save_eg(eg, tmp_path)
        restored = load_eg(tmp_path)
        for vertex in eg.vertices():
            twin = restored.vertex(vertex.vertex_id)
            assert twin.frequency == vertex.frequency
            assert twin.compute_time == vertex.compute_time
            assert twin.size == vertex.size
            assert twin.materialized == vertex.materialized

    def test_roundtrip_store_contents(self, tmp_path):
        eg = populated_eg()
        save_eg(eg, tmp_path)
        restored = load_eg(tmp_path)
        for vertex_id in eg.materialized_ids():
            assert restored.load(vertex_id) == eg.load(vertex_id)

    def test_roundtrip_dedup_store(self, tmp_path):
        eg = populated_eg(store=DedupArtifactStore())
        save_eg(eg, tmp_path)
        restored = load_eg(tmp_path)
        assert isinstance(restored.store, DedupArtifactStore)
        assert restored.store.total_bytes == eg.store.total_bytes

    def test_restored_eg_supports_planning(self, tmp_path):
        from repro.reuse import LinearReuse

        eg = populated_eg()
        save_eg(eg, tmp_path)
        restored = load_eg(tmp_path)
        dag = WorkloadDAG()
        current = dag.add_source("src", payload=DataFrame({"x": np.arange(6.0)}))
        for index in range(3):
            current = dag.add_operation([current], Step(index))
        dag.mark_terminal(current)
        plan = LinearReuse().plan(dag, restored)
        assert plan.loads  # the materialized chain is found

    def test_version_check(self, tmp_path):
        eg = populated_eg()
        save_eg(eg, tmp_path)
        graph_file = tmp_path / "graph.json"
        graph_file.write_text(graph_file.read_text().replace('"version": 1', '"version": 99'))
        with pytest.raises(ValueError, match="version"):
            load_eg(tmp_path)

    def test_quality_survives(self, tmp_path):
        eg = populated_eg()
        vertex = next(v for v in eg.artifact_vertices() if not v.is_source)
        from repro.graph.artifacts import ArtifactMeta, ArtifactType

        vertex.meta = ArtifactMeta(
            artifact_type=ArtifactType.MODEL, quality=0.77, model_type="Fake"
        )
        save_eg(eg, tmp_path)
        restored = load_eg(tmp_path)
        assert restored.vertex(vertex.vertex_id).quality == 0.77
