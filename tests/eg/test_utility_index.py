"""Tests for the incrementally maintained UtilityIndex.

The contract under test is *exact* equality: after any sequence of
``union_workload`` calls, the maintained recreation costs, potentials,
and frequencies must be bit-identical to a full recompute
(``math.fsum`` makes the cost sums order-independent; potentials are
``max`` chains).
"""

import random

import numpy as np
import pytest

from repro.dataframe import DataFrame
from repro.eg.graph import ExperimentGraph
from repro.eg.utility_index import UtilityIndex, UtilityIndexDivergence
from repro.graph.artifacts import ArtifactMeta, ArtifactType
from repro.graph.dag import WorkloadDAG
from repro.graph.operations import DataOperation


class Step(DataOperation):
    def __init__(self, tag):
        super().__init__("uix-step", params={"tag": tag})

    def run(self, underlying_data):
        return underlying_data


def _frame() -> DataFrame:
    return DataFrame({"x": np.arange(4.0)})


def _mark_model(vertex, quality: float) -> None:
    vertex.meta = ArtifactMeta(
        artifact_type=ArtifactType.MODEL, quality=quality, model_type="Fake"
    )
    vertex.artifact_type = ArtifactType.MODEL


def chain_workload(
    tags: list[str],
    compute_times: list[float],
    source: str = "src",
    tip_quality: float | None = None,
) -> WorkloadDAG:
    """A linear source -> tags[0] -> ... -> tags[-1] workload."""
    dag = WorkloadDAG()
    current = dag.add_source(source, payload=_frame())
    for tag, compute_time in zip(tags, compute_times):
        current = dag.add_operation([current], Step(tag))
        dag.vertex(current).record_result(_frame(), compute_time=compute_time)
    if tip_quality is not None:
        _mark_model(dag.vertex(current), tip_quality)
    dag.mark_terminal(current)
    return dag


def random_workload(rng: random.Random) -> WorkloadDAG:
    """A randomized workload drawn from a small operation pool.

    Tags repeat across calls, so successive unions hit existing EG
    vertices with fresh compute times (retimes) and fresh model
    qualities (requalifies); whether a tag is a model is deterministic
    so a vertex id never changes artifact type between workloads.
    """
    dag = WorkloadDAG()
    source = dag.add_source(f"src{rng.randrange(2)}", payload=_frame())
    frontier = [source]
    for _ in range(rng.randrange(3, 10)):
        tag = rng.randrange(24)
        distinct = list(dict.fromkeys(frontier))
        if len(distinct) >= 2 and rng.random() < 0.25:
            inputs = rng.sample(distinct, 2)
            vertex_id = dag.add_operation(inputs, Step(f"join{tag}"))
        else:
            vertex_id = dag.add_operation([rng.choice(frontier)], Step(f"t{tag}"))
        vertex = dag.vertex(vertex_id)
        vertex.record_result(_frame(), compute_time=round(rng.uniform(0.1, 3.0), 3))
        if tag % 3 == 0:
            _mark_model(vertex, quality=round(rng.random(), 3))
        frontier.append(vertex_id)
    dag.mark_terminal(frontier[-1])
    return dag


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", [7, 23, 0xC0FFEE])
    def test_batch_sequences_match_full_recompute(self, seed):
        rng = random.Random(seed)
        eg = ExperimentGraph()
        index = UtilityIndex.install(eg)
        for _ in range(40):
            eg.union_workload(random_workload(rng))
            # exact dict equality against the O(graph) recompute
            assert index.recreation_costs() == eg.recreation_costs()
            assert index.potentials() == eg.potentials()
            index.verify()  # also covers frequencies
        assert index.deltas_applied == 40
        assert index.cross_checks_passed == 40

    def test_install_on_populated_graph(self):
        rng = random.Random(11)
        eg = ExperimentGraph()
        for _ in range(10):
            eg.union_workload(random_workload(rng))
        index = UtilityIndex.install(eg)
        assert eg.utility_index is index
        index.verify()
        eg.union_workload(random_workload(rng))
        index.verify()


class TestDirtyCones:
    def test_reused_prefix_keeps_cost_cone_small(self):
        # long chain, then a workload that reuses its prefix and adds one
        # leaf: only the leaf's costs are recomputed, not the whole EG
        tags = [f"c{i}" for i in range(30)]
        times = [1.0 + i for i in range(30)]
        eg = ExperimentGraph()
        index = UtilityIndex.install(eg)
        eg.union_workload(chain_workload(tags, times))
        extension = chain_workload(tags[:3] + ["leaf"], times[:3] + [5.0])
        eg.union_workload(extension)
        assert index.last_cost_dirty == 1  # just the leaf
        # potentials walk the leaf's ancestors: src + 3 prefix steps + leaf
        assert index.last_potential_dirty == 5
        assert index.last_potential_dirty < eg.num_vertices
        index.verify()

    def test_retime_propagates_to_descendants(self):
        tags = ["a", "b", "c"]
        eg = ExperimentGraph()
        index = UtilityIndex.install(eg)
        eg.union_workload(chain_workload(tags, [1.0, 1.0, 1.0]))
        before = dict(index.recreation_costs())
        # re-run the first step slower: every downstream cost moves
        eg.union_workload(chain_workload(tags, [4.0, 1.0, 1.0]))
        after = index.recreation_costs()
        changed = [vid for vid in before if after[vid] != before[vid]]
        assert len(changed) == 3  # a, b, c — but not the source
        index.verify()

    def test_requalify_updates_ancestor_potentials(self):
        tags = ["a", "b", "m"]
        eg = ExperimentGraph()
        index = UtilityIndex.install(eg)
        eg.union_workload(chain_workload(tags, [1.0, 1.0, 1.0], tip_quality=0.4))
        assert all(p == 0.4 for p in index.potentials().values())
        eg.union_workload(chain_workload(tags, [1.0, 1.0, 1.0], tip_quality=0.9))
        assert all(p == 0.9 for p in index.potentials().values())
        index.verify()


class TestDeltaReporting:
    def test_union_reports_changes_against_prior_state(self):
        eg = ExperimentGraph()
        first = eg.union_workload(
            chain_workload(["a", "b"], [1.0, 2.0], tip_quality=0.5)
        )
        assert len(first.new_vertices) == 3  # source + 2 steps
        assert len(first.new_edges) == 2
        assert not first.touched
        second = eg.union_workload(
            chain_workload(["a", "b", "c"], [1.5, 2.0, 3.0], tip_quality=0.8)
        )
        assert len(second.new_vertices) == 1
        assert len(second.touched) == 3
        retimed = set(second.compute_time_changes)
        assert len(retimed) == 1  # only "a" changed compute time
        assert second.compute_time_changes[retimed.pop()] == 1.0
        # "b" lost its model quality? no — its quality never changed; the
        # old tip "b" was requalified from 0.5 to 0 only if the new meta
        # cleared it, which the union's merge rule forbids
        assert all(old == 0.5 for old in second.quality_changes.values())
        # dirty set covers everything either pass touched
        assert second.dirty_vertices() == set(second.new_vertices) | second.touched

    def test_uninstall_detaches(self):
        eg = ExperimentGraph()
        index = UtilityIndex.install(eg)
        index.uninstall()
        assert eg.utility_index is None
        eg.union_workload(chain_workload(["a"], [1.0]))
        assert index.deltas_applied == 0


class TestVerify:
    def test_verify_catches_behind_the_back_mutation(self):
        eg = ExperimentGraph()
        index = UtilityIndex.install(eg)
        eg.union_workload(chain_workload(["a", "b"], [1.0, 2.0]))
        index.verify()
        tip = next(
            v.vertex_id for v in eg.artifact_vertices() if not v.is_source
        )
        eg.vertex(tip).compute_time = 99.0  # not via union_workload
        with pytest.raises(UtilityIndexDivergence):
            index.verify()
