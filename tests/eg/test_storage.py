"""Tests for artifact stores and the load-cost model."""

import numpy as np
import pytest

from repro.dataframe import Column, DataFrame
from repro.eg.storage import (
    ArtifactDivergenceError,
    DedupArtifactStore,
    LoadCostModel,
    SimpleArtifactStore,
    StorageTier,
)


class TestLoadCostModel:
    def test_linear_in_size(self):
        model = LoadCostModel(bandwidth_bytes_per_s=100.0, latency_s=1.0)
        assert model.cost(0) == 1.0
        assert model.cost(200) == 3.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            LoadCostModel.in_memory().cost(-1)

    def test_presets_ordered(self):
        size = 10_000_000
        memory = LoadCostModel.in_memory().cost(size)
        disk = LoadCostModel.on_disk().cost(size)
        remote = LoadCostModel.remote().cost(size)
        assert memory < disk < remote


class TestSimpleStore:
    def test_put_get_roundtrip(self):
        store = SimpleArtifactStore()
        store.put("v1", {"a": 1})
        assert store.get("v1") == {"a": 1}

    def test_put_returns_incremental_bytes(self):
        store = SimpleArtifactStore()
        added = store.put("v1", np.zeros(100))
        assert added == 800
        assert store.put("v1", np.zeros(100)) == 0  # idempotent

    def test_remove_releases_bytes(self):
        store = SimpleArtifactStore()
        store.put("v1", np.zeros(100))
        assert store.remove("v1") == 800
        assert store.total_bytes == 0
        assert store.remove("v1") == 0

    def test_missing_get_raises(self):
        with pytest.raises(KeyError, match="not materialized"):
            SimpleArtifactStore().get("nope")

    def test_contains_and_ids(self):
        store = SimpleArtifactStore()
        store.put("v1", 1)
        assert "v1" in store
        assert store.vertex_ids == {"v1"}

    def test_incremental_size_dry_run(self):
        store = SimpleArtifactStore()
        store.put("v1", np.zeros(10))
        planned = [("v1", np.zeros(10)), ("v2", np.zeros(10))]
        assert store.incremental_size(planned) == 80
        assert store.total_bytes == 80  # dry run did not commit


def frame_with_ids(spec: dict[str, tuple[str, int]]) -> DataFrame:
    """Build a frame from {name: (column_id, n_values)}."""
    columns = [
        Column(name, np.zeros(n), column_id) for name, (column_id, n) in spec.items()
    ]
    return DataFrame(columns)


class TestDedupStore:
    def test_shared_column_stored_once(self):
        store = DedupArtifactStore()
        a = frame_with_ids({"x": ("shared", 100), "y": ("only_a", 100)})
        b = frame_with_ids({"x": ("shared", 100), "z": ("only_b", 100)})
        added_a = store.put("a", a)
        added_b = store.put("b", b)
        assert added_a == 1600
        assert added_b == 800  # 'shared' not charged again
        assert store.total_bytes == 2400
        assert store.logical_bytes == 3200

    def test_get_reconstructs_frame(self):
        store = DedupArtifactStore()
        frame = frame_with_ids({"x": ("c1", 10), "y": ("c2", 10)})
        store.put("v", frame)
        assert store.get("v").columns == ["x", "y"]
        assert store.get("v") == frame

    def test_rename_reuses_column(self):
        """The same lineage id under a different name is still deduplicated."""
        store = DedupArtifactStore()
        store.put("a", frame_with_ids({"x": ("c1", 100)}))
        added = store.put("b", frame_with_ids({"renamed": ("c1", 100)}))
        assert added == 0
        assert store.get("b").columns == ["renamed"]

    def test_refcounted_removal(self):
        store = DedupArtifactStore()
        store.put("a", frame_with_ids({"x": ("shared", 100)}))
        store.put("b", frame_with_ids({"x": ("shared", 100)}))
        assert store.remove("a") == 0  # still referenced by b
        assert store.remove("b") == 800
        assert store.total_bytes == 0

    def test_non_frame_payloads(self):
        store = DedupArtifactStore()
        added = store.put("m", np.zeros(10))
        assert added == 80
        assert np.array_equal(store.get("m"), np.zeros(10))
        assert store.remove("m") == 80

    def test_incremental_size_counts_shared_once(self):
        store = DedupArtifactStore()
        store.put("a", frame_with_ids({"x": ("c1", 100)}))
        planned = [
            ("b", frame_with_ids({"x": ("c1", 100), "y": ("c2", 100)})),
            ("c", frame_with_ids({"y": ("c2", 100), "z": ("c3", 100)})),
        ]
        # c1 already stored; c2 shared between planned frames counted once
        assert store.incremental_size(planned) == 1600

    def test_missing_get_raises(self):
        with pytest.raises(KeyError):
            DedupArtifactStore().get("nope")

    def test_put_idempotent(self):
        store = DedupArtifactStore()
        frame = frame_with_ids({"x": ("c1", 10)})
        store.put("v", frame)
        assert store.put("v", frame) == 0

    def test_vertex_ids_mixed(self):
        store = DedupArtifactStore()
        store.put("frame", frame_with_ids({"x": ("c1", 10)}))
        store.put("model", object())
        assert store.vertex_ids == {"frame", "model"}


class TestDivergenceDetection:
    """Silently accepting a different payload under a stored vertex id used
    to lose data; re-puts are now checked against a cheap signature."""

    def test_simple_store_divergent_object(self):
        store = SimpleArtifactStore()
        store.put("v", np.zeros(10))
        with pytest.raises(ArtifactDivergenceError, match="different payload"):
            store.put("v", np.zeros(20))

    def test_simple_store_divergent_frame(self):
        store = SimpleArtifactStore()
        store.put("v", frame_with_ids({"x": ("c1", 10)}))
        with pytest.raises(ArtifactDivergenceError, match="different columns"):
            store.put("v", frame_with_ids({"x": ("c1", 10), "y": ("c2", 10)}))

    def test_simple_store_kind_mismatch(self):
        store = SimpleArtifactStore()
        store.put("v", frame_with_ids({"x": ("c1", 10)}))
        with pytest.raises(ArtifactDivergenceError):
            store.put("v", np.zeros(10))

    def test_dedup_store_divergent_frame(self):
        store = DedupArtifactStore()
        store.put("v", frame_with_ids({"x": ("c1", 10)}))
        with pytest.raises(ArtifactDivergenceError, match="different columns"):
            store.put("v", frame_with_ids({"renamed": ("c1", 10)}))

    def test_dedup_store_divergent_object(self):
        store = DedupArtifactStore()
        store.put("m", np.zeros(10))
        with pytest.raises(ArtifactDivergenceError):
            store.put("m", np.zeros(11))

    def test_same_content_fresh_lineage_ids_accepted(self):
        # a second run of the same workload rebuilds frames with fresh
        # lineage ids; identical shape/content must still be a no-op re-put
        store = DedupArtifactStore()
        store.put("v", frame_with_ids({"x": ("run1", 10)}))
        assert store.put("v", frame_with_ids({"x": ("run2", 10)})) == 0


class TestTierDefaults:
    """Purely-RAM stores present themselves as an all-hot single tier."""

    def test_tier_of_is_hot(self):
        store = SimpleArtifactStore()
        store.put("v", np.zeros(10))
        assert store.tier_of("v") is StorageTier.HOT

    def test_tier_of_missing_raises(self):
        with pytest.raises(KeyError):
            DedupArtifactStore().tier_of("nope")

    def test_statistics_all_hot(self):
        store = DedupArtifactStore()
        store.put("v", frame_with_ids({"x": ("c1", 100)}))
        stats = store.statistics()
        assert stats["store_type"] == "DedupArtifactStore"
        assert stats["hot_bytes"] == stats["total_bytes"] == 800
        assert stats["cold_bytes"] == 0
        assert stats["vertices"] == 1

    def test_base_cost_for_tier_ignores_tier(self):
        model = LoadCostModel(bandwidth_bytes_per_s=100.0, latency_s=1.0)
        assert model.cost_for_tier(200, StorageTier.COLD) == model.cost(200)
