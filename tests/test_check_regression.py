"""The benchmark regression gate reports every failing counter at once."""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_regression",
    Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py",
)
check_regression = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_regression)


def bench_document(counters: dict[str, dict[str, float]]) -> dict:
    return {
        "benchmarks": [
            {"name": name, "extra_info": extra} for name, extra in counters.items()
        ]
    }


class TestExtract:
    def test_only_vc_counters_are_extracted(self):
        document = bench_document(
            {"b": {"vc_loads": 3, "vc_exact_vertices": 10, "wall_s": 1.25, "note": "x"}}
        )
        counters = check_regression.extract_counters(document)
        assert counters == {"b.vc_loads": 3.0, "b.vc_exact_vertices": 10.0}


class TestCompare:
    def test_all_failing_counters_reported_in_one_run(self):
        baseline = {
            "b.vc_loads": 10.0,
            "b.vc_bytes": 100.0,
            "b.vc_exact_vertices": 40.0,
        }
        current = {
            "b.vc_loads": 50.0,  # way past tolerance
            "b.vc_bytes": 400.0,  # also past tolerance
            "b.vc_exact_vertices": 41.0,  # exact mismatch
        }
        regressions = check_regression.compare(baseline, current, tolerance=0.25)
        assert len(regressions) == 3
        text = "\n".join(regressions)
        assert "b.vc_loads" in text
        assert "b.vc_bytes" in text
        assert "b.vc_exact_vertices" in text

    def test_missing_exact_counter_fails_the_gate(self):
        baseline = {"b.vc_exact_vertices": 40.0, "b.vc_loads": 10.0}
        current = {"b.vc_loads": 10.0}
        regressions = check_regression.compare(baseline, current, tolerance=0.25)
        assert len(regressions) == 1
        assert "MISSING" in regressions[0]

    def test_missing_soft_counter_is_only_a_note(self):
        baseline = {"b.vc_loads": 10.0}
        regressions = check_regression.compare(baseline, {}, tolerance=0.25)
        assert regressions == []

    def test_exact_counters_fail_on_shrinkage_too(self):
        baseline = {"b.vc_exact_vertices": 40.0}
        current = {"b.vc_exact_vertices": 39.0}
        assert len(check_regression.compare(baseline, current, 0.25)) == 1

    def test_small_integer_counters_get_absolute_slack(self):
        baseline = {"b.vc_demotions": 2.0}
        current = {"b.vc_demotions": 3.0}  # +50% but within slack
        assert check_regression.compare(baseline, current, 0.25) == []

    def test_full_diff_covers_new_missing_and_changed(self):
        baseline = {"b.vc_loads": 10.0, "b.vc_gone": 5.0}
        current = {"b.vc_loads": 12.0, "b.vc_new": 7.0}
        lines = check_regression.full_diff(baseline, current)
        text = "\n".join(lines)
        assert "b.vc_loads: 10 -> 12 (+2)" in text
        assert "b.vc_gone: 5 -> (missing)" in text
        assert "b.vc_new: (new) -> 7" in text


class TestMain:
    def test_failing_run_exits_nonzero_and_prints_full_diff(self, tmp_path, capsys):
        bench = tmp_path / "bench.json"
        bench.write_text(
            json.dumps(bench_document({"b": {"vc_exact_vertices": 41}}))
        )
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"b.vc_exact_vertices": 40.0}))
        code = check_regression.main(
            [str(bench), "--baseline", str(baseline)]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "1 counter(s) failed" in out
        assert "full diff" in out

    def test_update_rewrites_the_baseline(self, tmp_path):
        bench = tmp_path / "bench.json"
        bench.write_text(json.dumps(bench_document({"b": {"vc_loads": 3}})))
        baseline = tmp_path / "baseline.json"
        code = check_regression.main(
            [str(bench), "--baseline", str(baseline), "--update"]
        )
        assert code == 0
        assert json.loads(baseline.read_text()) == {"b.vc_loads": 3.0}

    def test_clean_run_passes(self, tmp_path):
        bench = tmp_path / "bench.json"
        bench.write_text(json.dumps(bench_document({"b": {"vc_loads": 3}})))
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"b.vc_loads": 3.0}))
        assert check_regression.main([str(bench), "--baseline", str(baseline)]) == 0

    def test_empty_run_is_an_error(self, tmp_path):
        bench = tmp_path / "bench.json"
        bench.write_text(json.dumps({"benchmarks": []}))
        assert check_regression.main([str(bench)]) == 2


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
