"""Tests for operations and their identity hashes."""

import pytest

from repro.graph.artifacts import ArtifactType
from repro.graph.operations import (
    DataOperation,
    FunctionOperation,
    TrainOperation,
    operation_hash,
)


class TestOperationHash:
    def test_deterministic(self):
        assert operation_hash("op", {"a": 1}) == operation_hash("op", {"a": 1})

    def test_name_sensitivity(self):
        assert operation_hash("op1") != operation_hash("op2")

    def test_param_sensitivity(self):
        assert operation_hash("op", {"a": 1}) != operation_hash("op", {"a": 2})

    def test_param_order_insensitive(self):
        assert operation_hash("op", {"a": 1, "b": 2}) == operation_hash(
            "op", {"b": 2, "a": 1}
        )

    def test_nested_params(self):
        h1 = operation_hash("op", {"grid": {"x": [1, 2]}})
        h2 = operation_hash("op", {"grid": {"x": [1, 2]}})
        h3 = operation_hash("op", {"grid": {"x": [2, 1]}})
        assert h1 == h2
        assert h1 != h3

    def test_callable_params_hash_by_name(self):
        def scorer_a():
            pass

        def scorer_b():
            pass

        assert operation_hash("op", {"f": scorer_a}) != operation_hash(
            "op", {"f": scorer_b}
        )

    def test_no_params(self):
        assert operation_hash("op") == operation_hash("op", None)
        assert operation_hash("op") == operation_hash("op", {})


class TestOperationClasses:
    def test_data_operation_return_types(self):
        assert DataOperation("x").return_type is ArtifactType.DATASET
        agg = DataOperation("x", return_type=ArtifactType.AGGREGATE)
        assert agg.return_type is ArtifactType.AGGREGATE

    def test_data_operation_rejects_model(self):
        with pytest.raises(ValueError):
            DataOperation("x", return_type=ArtifactType.MODEL)

    def test_train_operation_returns_model(self):
        assert TrainOperation("fit").return_type is ArtifactType.MODEL

    def test_train_operation_default_not_warmstartable(self):
        assert not TrainOperation("fit").warmstartable

    def test_train_operation_default_score_is_none(self):
        assert TrainOperation("fit").score(None, None) is None

    def test_run_is_abstract(self):
        with pytest.raises(NotImplementedError):
            DataOperation("x").run(None)

    def test_warmstarted_falls_back_to_run(self):
        class Op(TrainOperation):
            def run(self, underlying_data):
                return "cold"

        assert Op("fit").run_warmstarted(None, initial_model="m") == "cold"


class TestFunctionOperation:
    def test_single_input(self):
        op = FunctionOperation(lambda v: v + 1, name="inc")
        assert op.run(41) == 42

    def test_multi_input_unpacked(self):
        op = FunctionOperation(lambda a, b: a + b, name="add")
        assert op.run([20, 22]) == 42

    def test_params_forwarded(self):
        op = FunctionOperation(lambda v, k: v * k, name="scale", params={"k": 3})
        assert op.run(5) == 15

    def test_name_defaults_to_qualname(self):
        def my_function(v):
            return v

        op = FunctionOperation(my_function)
        assert "my_function" in op.name

    def test_hash_stable_across_instances(self):
        def f(v):
            return v

        assert FunctionOperation(f).op_hash == FunctionOperation(f).op_hash
