"""Tests for artifact meta-data derivation and sizing."""

import numpy as np
import pytest

from repro.dataframe import DataFrame
from repro.graph.artifacts import (
    ArtifactType,
    artifact_meta,
    payload_size_bytes,
)
from repro.ml import GradientBoostingClassifier, LogisticRegression


class TestPayloadSize:
    def test_none_is_zero(self):
        assert payload_size_bytes(None) == 0

    def test_frame_size(self):
        frame = DataFrame({"x": np.zeros(100)})
        assert payload_size_bytes(frame) == 800

    def test_ndarray(self):
        assert payload_size_bytes(np.zeros(10)) == 80

    def test_fitted_model_larger_than_unfitted(self):
        X = np.random.default_rng(0).normal(size=(50, 20))
        y = (X[:, 0] > 0).astype(int)
        unfitted = LogisticRegression(max_iter=5)
        fitted = LogisticRegression(max_iter=5).fit(X, y)
        assert payload_size_bytes(fitted) > payload_size_bytes(unfitted)

    def test_boosted_ensemble_grows_with_trees(self):
        X = np.random.default_rng(0).normal(size=(60, 3))
        y = (X[:, 0] > 0).astype(int)
        small = GradientBoostingClassifier(n_estimators=2).fit(X, y)
        large = GradientBoostingClassifier(n_estimators=10).fit(X, y)
        assert payload_size_bytes(large) > payload_size_bytes(small)

    def test_containers(self):
        assert payload_size_bytes([np.zeros(10), np.zeros(10)]) == 160
        assert payload_size_bytes({"a": np.zeros(10)}) > 80


class TestArtifactMeta:
    def test_dataset_meta(self):
        frame = DataFrame({"x": np.zeros(3), "s": np.asarray(["a", "b", "c"], dtype=object)})
        meta = artifact_meta(frame)
        assert meta.artifact_type is ArtifactType.DATASET
        assert set(meta.schema) == {"x", "s"}
        assert set(meta.column_ids) == {"x", "s"}

    def test_model_meta(self):
        model = LogisticRegression(C=3.0)
        meta = artifact_meta(model)
        assert meta.artifact_type is ArtifactType.MODEL
        assert meta.model_type == "LogisticRegression"
        assert meta.schema["C"] == 3.0
        assert meta.warmstartable  # LogisticRegression supports warm start

    def test_aggregate_meta(self):
        meta = artifact_meta(0.75)
        assert meta.artifact_type is ArtifactType.AGGREGATE

    def test_with_quality(self):
        meta = artifact_meta(LogisticRegression())
        scored = meta.with_quality(0.9)
        assert scored.quality == 0.9
        assert meta.quality is None  # original untouched

    def test_with_quality_bounds(self):
        meta = artifact_meta(LogisticRegression())
        with pytest.raises(ValueError):
            meta.with_quality(1.5)

    def test_with_quality_non_model_rejected(self):
        with pytest.raises(ValueError):
            artifact_meta(0.5).with_quality(0.5)
