"""Tests for the client-side local pruner."""

import pytest

from repro.graph.dag import WorkloadDAG
from repro.graph.operations import DataOperation


class Op(DataOperation):
    def __init__(self, tag):
        super().__init__("op", params={"tag": tag})

    def run(self, underlying_data):
        return underlying_data


from repro.graph.pruning import prune_workload  # noqa: E402


@pytest.fixture
def diamond():
    """source -> a -> terminal, plus a dead branch source -> b."""
    dag = WorkloadDAG()
    src = dag.add_source("s", payload=0)
    a = dag.add_operation([src], Op("a"))
    b = dag.add_operation([src], Op("b"))
    dag.mark_terminal(a)
    return dag, src, a, b


class TestPruning:
    def test_dead_branch_deactivated(self, diamond):
        dag, src, a, b = diamond
        pruned = prune_workload(dag)
        assert pruned == 1
        assert not dag.edge_active(src, b)
        assert dag.edge_active(src, a)

    def test_edges_not_removed(self, diamond):
        dag, src, _a, b = diamond
        prune_workload(dag)
        assert dag.graph.has_edge(src, b)  # still present, just inactive

    def test_computed_endpoint_deactivated(self, diamond):
        dag, src, a, _b = diamond
        dag.vertex(a).record_result(1, compute_time=0.0)
        prune_workload(dag)
        assert not dag.edge_active(src, a)

    def test_requires_terminals(self):
        dag = WorkloadDAG()
        dag.add_source("s")
        with pytest.raises(ValueError, match="terminal"):
            prune_workload(dag)

    def test_reactivation_after_invalidation(self, diamond):
        dag, src, a, _b = diamond
        dag.set_edge_active(src, a, False)
        prune_workload(dag)
        assert dag.edge_active(src, a)

    def test_interactive_growth(self, diamond):
        """Extending the DAG after pruning re-evaluates edge activity."""
        dag, src, a, b = diamond
        prune_workload(dag)
        c = dag.add_operation([b], Op("c"))
        dag.mark_terminal(c)
        prune_workload(dag)
        assert dag.edge_active(src, b)
        assert dag.edge_active(b, c)

    def test_multi_terminal_keeps_both_paths(self, diamond):
        dag, src, a, b = diamond
        dag.mark_terminal(b)
        assert prune_workload(dag) == 0
        assert dag.edge_active(src, a) and dag.edge_active(src, b)
