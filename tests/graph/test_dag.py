"""Tests for the workload DAG: construction, supernodes, identity."""

import numpy as np
import pytest

from repro.dataframe import DataFrame
from repro.graph.artifacts import ArtifactType
from repro.graph.dag import WorkloadDAG, derived_vertex_id, source_vertex_id
from repro.graph.operations import DataOperation


class AddOne(DataOperation):
    def __init__(self):
        super().__init__("add_one")

    def run(self, underlying_data):
        return underlying_data + 1


class Combine(DataOperation):
    def __init__(self):
        super().__init__("combine")

    def run(self, underlying_data):
        return sum(underlying_data)


@pytest.fixture
def dag():
    return WorkloadDAG()


class TestVertexIds:
    def test_source_id_from_name(self):
        assert source_vertex_id("train") == source_vertex_id("train")
        assert source_vertex_id("train") != source_vertex_id("test")

    def test_derived_id_deterministic(self):
        assert derived_vertex_id(["a"], "h") == derived_vertex_id(["a"], "h")

    def test_derived_id_depends_on_parent_order(self):
        assert derived_vertex_id(["a", "b"], "h") != derived_vertex_id(["b", "a"], "h")


class TestConstruction:
    def test_add_source(self, dag):
        vid = dag.add_source("train", payload=1)
        assert vid in dag
        vertex = dag.vertex(vid)
        assert vertex.is_source
        assert vertex.computed
        assert vertex.data == 1

    def test_add_source_idempotent(self, dag):
        a = dag.add_source("train")
        b = dag.add_source("train", payload=5)
        assert a == b
        assert dag.vertex(a).data == 5  # payload backfilled

    def test_single_input_operation(self, dag):
        src = dag.add_source("train", payload=1)
        out = dag.add_operation([src], AddOne())
        assert dag.parents(out) == [src]
        assert dag.incoming_operation(out).name == "add_one"

    def test_same_operation_same_vertex(self, dag):
        src = dag.add_source("train")
        a = dag.add_operation([src], AddOne())
        b = dag.add_operation([src], AddOne())
        assert a == b
        assert dag.num_vertices == 2

    def test_cross_dag_identity(self):
        dag1, dag2 = WorkloadDAG(), WorkloadDAG()
        out1 = dag1.add_operation([dag1.add_source("train")], AddOne())
        out2 = dag2.add_operation([dag2.add_source("train")], AddOne())
        assert out1 == out2

    def test_multi_input_creates_supernode(self, dag):
        a = dag.add_source("a")
        b = dag.add_source("b")
        out = dag.add_operation([a, b], Combine())
        parents = dag.parents(out)
        assert len(parents) == 1
        assert dag.vertex(parents[0]).is_supernode
        assert dag.operation_inputs(out) == [a, b]

    def test_supernode_input_order_preserved(self, dag):
        a = dag.add_source("a")
        b = dag.add_source("b")
        out = dag.add_operation([b, a], Combine())
        assert dag.operation_inputs(out) == [b, a]

    def test_unknown_input_rejected(self, dag):
        with pytest.raises(KeyError):
            dag.add_operation(["missing"], AddOne())

    def test_empty_inputs_rejected(self, dag):
        with pytest.raises(ValueError):
            dag.add_operation([], AddOne())

    def test_terminal_marking(self, dag):
        src = dag.add_source("train")
        dag.mark_terminal(src)
        dag.mark_terminal(src)  # idempotent
        assert dag.terminals == [src]

    def test_terminal_unknown_vertex(self, dag):
        with pytest.raises(KeyError):
            dag.mark_terminal("nope")


class TestTopologyAndStats:
    def test_topological_order_respects_edges(self, dag):
        src = dag.add_source("train")
        mid = dag.add_operation([src], AddOne())
        order = dag.topological_order()
        assert order.index(src) < order.index(mid)

    def test_artifact_count_excludes_supernodes(self, dag):
        a = dag.add_source("a")
        b = dag.add_source("b")
        dag.add_operation([a, b], Combine())
        assert dag.num_artifacts() == 3
        assert dag.num_vertices == 4  # including the supernode

    def test_total_artifact_size(self, dag):
        src = dag.add_source("a", payload=DataFrame({"x": np.arange(10.0)}))
        assert dag.total_artifact_size() == dag.vertex(src).size > 0

    def test_record_result_sets_meta(self, dag):
        src = dag.add_source("a")
        out = dag.add_operation([src], AddOne())
        dag.vertex(out).record_result(DataFrame({"x": [1.0]}), compute_time=0.5)
        vertex = dag.vertex(out)
        assert vertex.computed
        assert vertex.compute_time == 0.5
        assert vertex.meta.artifact_type is ArtifactType.DATASET

    def test_validate_passes_for_wellformed(self, dag):
        a = dag.add_source("a")
        b = dag.add_source("b")
        out = dag.add_operation([a, b], Combine())
        dag.mark_terminal(out)
        dag.validate()

    def test_children(self, dag):
        src = dag.add_source("a")
        out = dag.add_operation([src], AddOne())
        assert dag.children(src) == [out]
