"""Tests for HM, SA, Helix, ALL, and NONE materializers."""

import pytest

from repro.eg.storage import LoadCostModel
from repro.graph.artifacts import payload_size_bytes
from repro.materialization import (
    HelixMaterializer,
    HeuristicMaterializer,
    MaterializeAll,
    MaterializeNone,
    StorageAwareMaterializer,
)

from .conftest import frame_of

FAST_LOAD = LoadCostModel(bandwidth_bytes_per_s=1e12, latency_s=0.0)


class TestHeuristicMaterializer:
    def test_respects_budget(self, builder):
        builder.artifact("a", 10.0, frame_of(800))
        builder.artifact("b", 10.0, frame_of(800))
        eg, _dag, available = builder.build()
        hm = HeuristicMaterializer(budget_bytes=900, load_cost_model=FAST_LOAD)
        selected = hm.select(eg, available)
        total = sum(payload_size_bytes(available[v]) for v in selected)
        assert total <= 900
        assert len(selected) == 1

    def test_unlimited_budget_takes_all_useful(self, builder):
        builder.artifact("a", 10.0, frame_of(800))
        builder.artifact("b", 10.0, frame_of(800))
        eg, _dag, available = builder.build()
        hm = HeuristicMaterializer(budget_bytes=None, load_cost_model=FAST_LOAD)
        assert len(hm.select(eg, available)) == 2

    def test_prefers_higher_utility(self, builder):
        cheap = builder.artifact(
            "cheap", 0.1, frame_of(800), parent=builder.dag.sources()[0]
        )
        expensive = builder.artifact(
            "expensive", 50.0, frame_of(800), parent=builder.dag.sources()[0]
        )
        eg, _dag, available = builder.build()
        hm = HeuristicMaterializer(budget_bytes=900, load_cost_model=FAST_LOAD)
        selected = hm.select(eg, available)
        assert selected == {expensive}

    def test_skips_too_large_but_continues(self, builder):
        big = builder.artifact(
            "big", 100.0, frame_of(8000), parent=builder.dag.sources()[0]
        )
        small = builder.artifact(
            "small", 50.0, frame_of(400), parent=builder.dag.sources()[0]
        )
        eg, _dag, available = builder.build()
        hm = HeuristicMaterializer(budget_bytes=500, load_cost_model=FAST_LOAD)
        assert hm.select(eg, available) == {small}

    def test_max_artifacts_cap(self, builder):
        builder.artifact("a", 10.0, frame_of(100))
        builder.artifact("b", 10.0, frame_of(100))
        eg, _dag, available = builder.build()
        hm = HeuristicMaterializer(
            budget_bytes=None, load_cost_model=FAST_LOAD, max_artifacts=1
        )
        assert len(hm.select(eg, available)) == 1

    def test_alpha_one_single_slot_picks_best_model(self, builder):
        """The Figure 8b setup: one slot, alpha=1 -> the gold model wins."""
        features = builder.artifact("f", 10.0, frame_of(100))
        weak = builder.artifact("weak", 1.0, frame_of(100), parent=features, quality=0.6)
        gold = builder.artifact("gold", 1.0, frame_of(100), parent=features, quality=0.95)
        eg, _dag, available = builder.build()
        hm = HeuristicMaterializer(
            budget_bytes=None, alpha=1.0, load_cost_model=FAST_LOAD, max_artifacts=1
        )
        assert hm.select(eg, available) == {gold}

    def test_only_available_payloads_selected(self, builder):
        vid = builder.artifact("a", 10.0, frame_of(100))
        eg, _dag, _available = builder.build()
        hm = HeuristicMaterializer(budget_bytes=None, load_cost_model=FAST_LOAD)
        assert hm.select(eg, {}) == set()

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            HeuristicMaterializer(budget_bytes=-1)


class TestStorageAware:
    def test_overlapping_artifacts_exceed_logical_budget(self, builder):
        """The Figure 6 effect: dedup lets SA store more than the budget.

        Round 1 (budget 4000) fits a and b logically; compression charges
        the shared columns once, freeing budget for c in round 2.  The
        logical total then exceeds the physical budget.
        """
        a = builder.artifact("a", 10.0, frame_of(1600, ["x1", "x2"]))
        b = builder.artifact("b", 10.0, frame_of(1600, ["x1", "x2"]), parent=a)
        c = builder.artifact("c", 10.0, frame_of(1600, ["x1", "x3"]), parent=a)
        eg, _dag, available = builder.build()
        sa = StorageAwareMaterializer(budget_bytes=4000, load_cost_model=FAST_LOAD)
        selected = sa.select(eg, available)
        assert selected == {a, b, c}
        logical = sum(payload_size_bytes(available[v]) for v in selected)
        assert logical == 4800 > 4000

    def test_physical_budget_respected(self, builder):
        builder.artifact("a", 10.0, frame_of(3200, ["a1", "a2"]))
        builder.artifact("b", 10.0, frame_of(3200, ["b1", "b2"]))
        eg, _dag, available = builder.build()
        sa = StorageAwareMaterializer(budget_bytes=3500, load_cost_model=FAST_LOAD)
        selected = sa.select(eg, available)
        assert len(selected) == 1  # no overlap -> second does not fit

    def test_matches_hm_without_overlap(self, builder):
        builder.artifact("a", 10.0, frame_of(800, ["x"]))
        builder.artifact("b", 20.0, frame_of(800, ["y"]))
        eg, _dag, available = builder.build()
        sa = StorageAwareMaterializer(budget_bytes=None, load_cost_model=FAST_LOAD)
        hm = HeuristicMaterializer(budget_bytes=None, load_cost_model=FAST_LOAD)
        assert sa.select(eg, available) == hm.select(eg, available)

    def test_zero_budget_selects_nothing(self, builder):
        builder.artifact("a", 10.0, frame_of(800))
        eg, _dag, available = builder.build()
        sa = StorageAwareMaterializer(budget_bytes=0, load_cost_model=FAST_LOAD)
        assert sa.select(eg, available) == set()


class TestHelixMaterializer:
    def test_cost_ratio_rule(self, builder):
        slow_load = LoadCostModel(bandwidth_bytes_per_s=100.0, latency_s=0.0)
        # recreation 10s vs load 8s: 10 < 2*8 -> not materialized
        marginal = builder.artifact(
            "marginal", 10.0, frame_of(800), parent=builder.dag.sources()[0]
        )
        # recreation 100s vs load 8s: 100 > 16 -> materialized
        worthwhile = builder.artifact(
            "worthwhile", 100.0, frame_of(800), parent=builder.dag.sources()[0]
        )
        eg, _dag, available = builder.build()
        hl = HelixMaterializer(budget_bytes=None, load_cost_model=slow_load)
        assert hl.select(eg, available) == {worthwhile}

    def test_root_first_budget_exhaustion(self, builder):
        """Helix stores early artifacts first, starving later high-value ones."""
        early = builder.artifact("early", 50.0, frame_of(800))
        late = builder.artifact("late", 500.0, frame_of(800))
        eg, _dag, available = builder.build()
        hl = HelixMaterializer(budget_bytes=900, load_cost_model=FAST_LOAD)
        assert hl.select(eg, available) == {early}

    def test_previously_materialized_kept_first(self, builder):
        early = builder.artifact("early", 50.0, frame_of(800))
        late = builder.artifact("late", 500.0, frame_of(800))
        eg, _dag, available = builder.build()
        eg.materialize(late, available[late])
        hl = HelixMaterializer(budget_bytes=900, load_cost_model=FAST_LOAD)
        assert hl.select(eg, available) == {late}

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            HelixMaterializer(budget_bytes=None, cost_ratio=0.0)


class TestAllAndNone:
    def test_all_selects_available(self, builder):
        builder.artifact("a", 1.0, frame_of(100))
        builder.artifact("b", 1.0, frame_of(100))
        eg, _dag, available = builder.build()
        assert MaterializeAll().select(eg, available) == set(available)

    def test_all_keeps_existing(self, builder):
        vid = builder.artifact("a", 1.0, frame_of(100))
        eg, _dag, available = builder.build()
        eg.materialize(vid, available[vid])
        assert vid in MaterializeAll().select(eg, {})

    def test_none_selects_nothing(self, builder):
        builder.artifact("a", 1.0, frame_of(100))
        eg, _dag, available = builder.build()
        assert MaterializeNone().select(eg, available) == set()
