"""Tests for the utility function (Equation 2 of the paper)."""

import pytest

from repro.eg.storage import LoadCostModel
from repro.materialization.base import compute_utilities

from .conftest import frame_of

SLOW_LOAD = LoadCostModel(bandwidth_bytes_per_s=1.0, latency_s=100.0)
FAST_LOAD = LoadCostModel(bandwidth_bytes_per_s=1e12, latency_s=0.0)


class TestUtility:
    def test_zero_when_load_exceeds_recreation(self, builder):
        vid = builder.artifact("a", compute_time=0.001, payload=frame_of(1000))
        eg, _dag, _avail = builder.build()
        utilities = compute_utilities(eg, SLOW_LOAD, alpha=0.5)
        assert utilities[vid].utility == 0.0

    def test_positive_when_recreation_expensive(self, builder):
        vid = builder.artifact("a", compute_time=50.0, payload=frame_of(1000))
        eg, _dag, _avail = builder.build()
        utilities = compute_utilities(eg, FAST_LOAD, alpha=0.5)
        assert utilities[vid].utility > 0.0

    def test_sources_excluded(self, builder):
        builder.artifact("a", 1.0, frame_of(100))
        eg, dag, _ = builder.build()
        utilities = compute_utilities(eg, FAST_LOAD, alpha=0.5)
        assert dag.sources()[0] not in utilities

    def test_recreation_cost_accumulates_down_chain(self, builder):
        a = builder.artifact("a", 2.0, frame_of(100))
        b = builder.artifact("b", 3.0, frame_of(100))
        eg, _dag, _ = builder.build()
        utilities = compute_utilities(eg, FAST_LOAD, alpha=0.5)
        assert utilities[a].recreation_cost == pytest.approx(2.0)
        assert utilities[b].recreation_cost == pytest.approx(5.0)

    def test_alpha_one_ranks_by_potential(self, builder):
        cheap_model = builder.artifact("m1", 0.5, frame_of(100), quality=0.9)
        expensive_data = builder.artifact(
            "d", 100.0, frame_of(100), parent=builder.dag.sources()[0]
        )
        eg, _dag, _ = builder.build()
        utilities = compute_utilities(eg, FAST_LOAD, alpha=1.0)
        assert utilities[cheap_model].utility > utilities[expensive_data].utility

    def test_alpha_zero_ranks_by_cost_size(self, builder):
        model = builder.artifact("m1", 0.5, frame_of(100), quality=0.9)
        heavy = builder.artifact(
            "d", 100.0, frame_of(100), parent=builder.dag.sources()[0]
        )
        eg, _dag, _ = builder.build()
        utilities = compute_utilities(eg, FAST_LOAD, alpha=0.0)
        assert utilities[heavy].utility > utilities[model].utility

    def test_frequency_raises_cost_size_ratio(self, builder):
        vid = builder.artifact("a", 5.0, frame_of(100))
        eg, dag, _ = builder.build()
        before = compute_utilities(eg, FAST_LOAD, alpha=0.0)[vid].cost_size_ratio
        eg.union_workload(dag)  # appears in a second workload
        after = compute_utilities(eg, FAST_LOAD, alpha=0.0)[vid].cost_size_ratio
        assert after == pytest.approx(2 * before)

    def test_normalization_sums_to_one(self, builder):
        builder.artifact("a", 5.0, frame_of(100))
        builder.artifact("b", 7.0, frame_of(300))
        eg, _dag, _ = builder.build()
        utilities = compute_utilities(eg, FAST_LOAD, alpha=0.0)
        total = sum(u.utility for u in utilities.values())
        assert total == pytest.approx(1.0)

    def test_invalid_alpha(self, builder):
        builder.artifact("a", 1.0, frame_of(100))
        eg, _dag, _ = builder.build()
        with pytest.raises(ValueError):
            compute_utilities(eg, FAST_LOAD, alpha=1.5)
