"""Builders for controlled Experiment Graphs in materialization tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataframe import Column, DataFrame
from repro.eg.graph import ExperimentGraph
from repro.graph.artifacts import ArtifactMeta, ArtifactType
from repro.graph.dag import WorkloadDAG
from repro.graph.operations import DataOperation


class _Step(DataOperation):
    def __init__(self, tag: str):
        super().__init__("step", params={"tag": tag})

    def run(self, underlying_data):
        return underlying_data


def frame_of(nbytes: int, column_ids: list[str] | None = None) -> DataFrame:
    """A frame of roughly ``nbytes`` split over the given lineage ids."""
    ids = column_ids or [None]
    per_column = max(1, nbytes // (8 * len(ids)))
    columns = []
    for index, column_id in enumerate(ids):
        columns.append(Column(f"c{index}", np.zeros(per_column), column_id))
    return DataFrame(columns)


class EGBuilder:
    """Fluent builder: chains of artifacts with explicit costs and sizes."""

    def __init__(self):
        self.dag = WorkloadDAG()
        self._source = self.dag.add_source("src", payload=frame_of(8))
        self._last = self._source

    def artifact(
        self,
        tag: str,
        compute_time: float,
        payload,
        parent: str | None = None,
        quality: float | None = None,
    ) -> str:
        parent = parent if parent is not None else self._last
        vertex_id = self.dag.add_operation([parent], _Step(tag))
        vertex = self.dag.vertex(vertex_id)
        vertex.record_result(payload, compute_time=compute_time)
        if quality is not None:
            vertex.meta = ArtifactMeta(
                artifact_type=ArtifactType.MODEL, quality=quality, model_type="Fake"
            )
            vertex.artifact_type = ArtifactType.MODEL
        self._last = vertex_id
        return vertex_id

    def build(self) -> tuple[ExperimentGraph, WorkloadDAG, dict[str, object]]:
        self.dag.mark_terminal(self._last)
        eg = ExperimentGraph()
        eg.union_workload(self.dag)
        available = {
            v.vertex_id: v.data
            for v in self.dag.artifact_vertices()
            if v.computed and not v.is_source
        }
        return eg, self.dag, available


@pytest.fixture
def builder():
    return EGBuilder()
