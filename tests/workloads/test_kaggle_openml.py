"""Integration tests: the Kaggle and OpenML workload scripts themselves."""

import pytest

from repro.client.executor import Executor
from repro.client.parser import parse_workload
from repro.graph.pruning import prune_workload
from repro.materialization import MaterializeAll
from repro.server.service import CollaborativeOptimizer
from repro.workloads.kaggle import (
    KAGGLE_WORKLOADS,
    w1_features,
    w2_features,
    workload_description,
)
from repro.workloads.openml import make_pipeline_script, sample_pipeline_specs


class TestKaggleScripts:
    @pytest.mark.parametrize("workload_id", list(KAGGLE_WORKLOADS))
    def test_parses_and_executes(self, workload_id, tiny_home_credit):
        workspace = parse_workload(KAGGLE_WORKLOADS[workload_id], tiny_home_credit)
        prune_workload(workspace.dag)
        report = Executor().execute(workspace.dag)
        assert report.executed_vertices > 0
        assert report.model_qualities  # every workload trains a scored model

    @pytest.mark.parametrize("workload_id", list(KAGGLE_WORKLOADS))
    def test_eager_mode_matches_structure(self, workload_id, tiny_home_credit):
        report = CollaborativeOptimizer.run_baseline(
            KAGGLE_WORKLOADS[workload_id], tiny_home_credit
        )
        assert report.executed_vertices > 0

    def test_w1_and_w4_share_feature_vertices(self, tiny_home_credit):
        """Modified workloads must regenerate identical vertex ids."""
        ws1 = parse_workload(KAGGLE_WORKLOADS[1], tiny_home_credit)
        ws4 = parse_workload(KAGGLE_WORKLOADS[4], tiny_home_credit)
        shared = set(ws1.dag.graph.nodes) & set(ws4.dag.graph.nodes)
        # all of W4's vertices except its own model/eval tail are in W1
        assert len(shared) > ws4.dag.num_vertices * 0.6

    def test_w2_and_w6_share_feature_vertices(self, tiny_home_credit):
        ws2 = parse_workload(KAGGLE_WORKLOADS[2], tiny_home_credit)
        ws6 = parse_workload(KAGGLE_WORKLOADS[6], tiny_home_credit)
        shared = set(ws2.dag.graph.nodes) & set(ws6.dag.graph.nodes)
        assert len(shared) >= ws6.dag.num_vertices * 0.5

    def test_w3_contains_w2(self, tiny_home_credit):
        ws2 = parse_workload(KAGGLE_WORKLOADS[2], tiny_home_credit)
        ws3 = parse_workload(KAGGLE_WORKLOADS[3], tiny_home_credit)
        w2_nodes = set(ws2.dag.graph.nodes)
        w3_nodes = set(ws3.dag.graph.nodes)
        assert len(w2_nodes & w3_nodes) > len(w2_nodes) * 0.7

    def test_descriptions_cover_all(self):
        for workload_id in KAGGLE_WORKLOADS:
            assert workload_description(workload_id)

    def test_second_run_cheaper(self, tiny_home_credit):
        co = CollaborativeOptimizer(MaterializeAll())
        first = co.run_script(KAGGLE_WORKLOADS[2], tiny_home_credit)
        second = co.run_script(KAGGLE_WORKLOADS[2], tiny_home_credit)
        assert second.total_time < first.total_time
        assert second.executed_vertices == 0

    def test_feature_helpers_are_prefix_stable(self, tiny_home_credit):
        """Calling a helper twice in one workspace adds no new vertices."""
        from repro.client.api import Workspace

        ws = Workspace()
        w1_features(ws, tiny_home_credit)
        count = ws.dag.num_vertices
        w1_features(ws, tiny_home_credit)
        assert ws.dag.num_vertices == count

    def test_w2_features_labels_align(self, tiny_home_credit):
        from repro.client.api import Workspace

        ws = Workspace(eager=True)
        features, y = w2_features(ws, tiny_home_credit)
        assert features.payload.num_rows == y.payload.num_rows


class TestOpenMLScripts:
    def test_pipeline_executes(self, tiny_credit_g):
        spec = sample_pipeline_specs(1, seed=0)[0]
        workspace = parse_workload(make_pipeline_script(spec), tiny_credit_g)
        prune_workload(workspace.dag)
        report = Executor().execute(workspace.dag)
        assert report.model_qualities

    @pytest.mark.parametrize("index", range(10))
    def test_first_ten_specs_execute(self, index, tiny_credit_g):
        spec = sample_pipeline_specs(10, seed=7)[index]
        co = CollaborativeOptimizer(MaterializeAll())
        report = co.run_script(make_pipeline_script(spec), tiny_credit_g)
        assert report.terminal_values

    def test_identical_specs_full_reuse(self, tiny_credit_g):
        spec = sample_pipeline_specs(1, seed=0)[0]
        co = CollaborativeOptimizer(MaterializeAll())
        co.run_script(make_pipeline_script(spec), tiny_credit_g)
        second = co.run_script(make_pipeline_script(spec), tiny_credit_g)
        assert second.executed_vertices == 0

    def test_quality_is_test_accuracy(self, tiny_credit_g):
        """The stored model quality equals the evaluate() terminal value."""
        spec = sample_pipeline_specs(5, seed=1)[3]
        co = CollaborativeOptimizer(MaterializeAll())
        report = co.run_script(make_pipeline_script(spec), tiny_credit_g)
        accuracy = next(
            v for v in report.terminal_values.values() if isinstance(v, float)
        )
        quality = next(iter(report.model_qualities.values()))
        assert quality == pytest.approx(accuracy)
