"""Tests for the synthetic data generators."""

import numpy as np
import pytest

from repro.workloads.home_credit import HOME_CREDIT_TABLES, generate_home_credit
from repro.workloads.openml import generate_credit_g, sample_pipeline_specs
from repro.workloads.synthetic_dag import (
    SyntheticDAGConfig,
    build_matching_eg,
    generate_synthetic_workload,
)


class TestHomeCredit:
    def test_all_nine_tables(self, tiny_home_credit):
        assert set(tiny_home_credit) == set(HOME_CREDIT_TABLES)

    def test_deterministic(self):
        a = generate_home_credit(n_applications=30, seed=5)
        b = generate_home_credit(n_applications=30, seed=5)
        assert a["application_train"] == b["application_train"]
        assert a["bureau"] == b["bureau"]

    def test_seed_changes_data(self):
        a = generate_home_credit(n_applications=30, seed=5)
        b = generate_home_credit(n_applications=30, seed=6)
        assert a["application_train"] != b["application_train"]

    def test_train_has_target_test_does_not(self, tiny_home_credit):
        assert "TARGET" in tiny_home_credit["application_train"]
        assert "TARGET" not in tiny_home_credit["application_test"]

    def test_target_is_binary_and_mixed(self, tiny_home_credit):
        target = tiny_home_credit["application_train"].values("TARGET")
        assert set(np.unique(target)) == {0, 1}

    def test_target_learnable(self):
        """Classifiers must beat random — the quality signal is real."""
        from repro.ml import GaussianNB, roc_auc_score

        sources = generate_home_credit(n_applications=800, seed=1)
        train = sources["application_train"]
        features = ["EXT_SOURCE_2", "AMT_CREDIT", "AMT_INCOME_TOTAL", "DAYS_BIRTH"]
        X = np.column_stack([np.nan_to_num(train.values(f), nan=0.5) for f in features])
        y = train.values("TARGET")
        model = GaussianNB().fit(X, y)
        auc = roc_auc_score(y, model.predict_proba(X)[:, 1])
        assert auc > 0.6

    def test_join_keys_consistent(self, tiny_home_credit):
        app_ids = set(tiny_home_credit["application_train"].values("SK_ID_CURR"))
        app_ids |= set(tiny_home_credit["application_test"].values("SK_ID_CURR"))
        bureau_ids = set(tiny_home_credit["bureau"].values("SK_ID_CURR"))
        assert bureau_ids <= app_ids

    def test_bureau_balance_references_bureau(self, tiny_home_credit):
        bureau = set(tiny_home_credit["bureau"].values("SK_ID_BUREAU"))
        balance = set(tiny_home_credit["bureau_balance"].values("SK_ID_BUREAU"))
        assert balance <= bureau

    def test_child_tables_reference_previous(self, tiny_home_credit):
        prev = set(tiny_home_credit["previous_application"].values("SK_ID_PREV"))
        for table in ("POS_CASH_balance", "installments_payments", "credit_card_balance"):
            child = set(tiny_home_credit[table].values("SK_ID_PREV"))
            assert child <= prev

    def test_missing_values_present(self, tiny_home_credit):
        ext = tiny_home_credit["application_train"].values("EXT_SOURCE_1")
        assert np.isnan(ext).any()

    def test_size_scales(self):
        small = generate_home_credit(n_applications=30, seed=1)
        large = generate_home_credit(n_applications=120, seed=1)
        assert large["bureau"].num_rows > small["bureau"].num_rows

    def test_min_size_enforced(self):
        with pytest.raises(ValueError):
            generate_home_credit(n_applications=5)


class TestCreditG:
    def test_split_sizes(self, tiny_credit_g):
        total = tiny_credit_g["openml_train"].num_rows + tiny_credit_g["openml_test"].num_rows
        assert total == 120

    def test_deterministic(self):
        a = generate_credit_g(n_rows=50, seed=2)
        b = generate_credit_g(n_rows=50, seed=2)
        assert a["openml_train"] == b["openml_train"]

    def test_majority_good_class(self):
        data = generate_credit_g(n_rows=1000, seed=0)
        y = data["openml_train"].values("target")
        assert 0.55 < np.mean(y) < 0.85  # credit-g is ~70% good

    def test_target_learnable(self):
        from repro.ml import GaussianNB

        data = generate_credit_g(n_rows=600, seed=0)
        train, test = data["openml_train"], data["openml_test"]
        X = train.drop("target").to_numpy()
        y = train.values("target")
        model = GaussianNB().fit(X, y)
        accuracy = model.score(test.drop("target").to_numpy(), test.values("target"))
        assert accuracy > 0.65

    def test_min_rows(self):
        with pytest.raises(ValueError):
            generate_credit_g(n_rows=5)


class TestPipelineSpecs:
    def test_count_and_determinism(self):
        a = sample_pipeline_specs(50, seed=1)
        b = sample_pipeline_specs(50, seed=1)
        assert len(a) == 50
        assert a == b

    def test_contains_repeats_at_scale(self):
        """The configuration space is finite; 500 draws must collide."""
        specs = sample_pipeline_specs(500, seed=1)
        keys = [(s.scaler, s.selector_k, s.model, s.model_params) for s in specs]
        assert len(set(keys)) < len(keys)

    def test_model_mix_includes_all_types(self):
        specs = sample_pipeline_specs(300, seed=2)
        assert {s.model for s in specs} == {"logreg", "gbt", "tree", "nb", "knn"}

    def test_build_estimator_types(self):
        specs = sample_pipeline_specs(50, seed=3)
        for spec in specs:
            estimator = spec.build_estimator()
            assert type(estimator).__name__ == spec.model_type


class TestSyntheticDAG:
    def test_node_count_in_range(self):
        config = SyntheticDAGConfig(min_nodes=50, max_nodes=80)
        workload = generate_synthetic_workload(seed=0, config=config)
        assert 50 <= workload.num_vertices <= 80 + 40  # supernodes extra

    def test_deterministic(self):
        config = SyntheticDAGConfig(min_nodes=30, max_nodes=50)
        a = generate_synthetic_workload(seed=4, config=config)
        b = generate_synthetic_workload(seed=4, config=config)
        assert set(a.graph.nodes) == set(b.graph.nodes)

    def test_has_terminals_and_is_acyclic(self):
        config = SyntheticDAGConfig(min_nodes=40, max_nodes=60)
        workload = generate_synthetic_workload(seed=1, config=config)
        assert workload.terminals
        workload.validate()

    def test_matching_eg_flags(self):
        config = SyntheticDAGConfig(min_nodes=60, max_nodes=90, materialized_ratio=0.5)
        workload = generate_synthetic_workload(seed=2, config=config)
        eg = build_matching_eg(workload, seed=2, config=config)
        materialized = sum(1 for v in eg.artifact_vertices() if v.materialized)
        artifacts = sum(1 for v in eg.artifact_vertices() if not v.is_source)
        assert 0.2 < materialized / artifacts < 0.8
        assert all(v.compute_time > 0 for v in eg.artifact_vertices() if not v.is_source)
