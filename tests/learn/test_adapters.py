"""Adapter behaviour: fallback safety, eviction scoring, linger control."""

import pytest

from repro.eg.storage import StorageTier
from repro.learn import (
    AdaptiveBatchSizer,
    AdaptiveConfig,
    FeedbackCollector,
    LearnedLoadCostModel,
    LoadObservation,
    ReuseValueScorer,
)
from repro.obs.metrics import MetricsRegistry
from repro.storage.costs import TieredLoadCostModel
from repro.storage.tiers import EvictionCandidate

_SECS_PER_MIB = 0.010
_LATENCY = 0.002


def _train_cold(collector: FeedbackCollector, n: int = 40) -> None:
    for i in range(n):
        size = (i % 8 + 1) * (1 << 18)
        collector.observe_load(
            LoadObservation(
                vertex_id=f"v{i}",
                size_bytes=size,
                n_columns=4,
                object_columns=0,
                tier=StorageTier.COLD,
                seconds=_LATENCY + (size / float(1 << 20)) * _SECS_PER_MIB,
            )
        )


class TestLearnedLoadCostModel:
    def setup_method(self):
        self.collector = FeedbackCollector(registry=MetricsRegistry())
        self.static = TieredLoadCostModel.default()
        self.model = LearnedLoadCostModel(self.collector, self.static)

    def test_is_a_tiered_load_cost_model(self):
        # the sharded service and planners type-check against the static
        # class; the learned wrapper must pass as one
        assert isinstance(self.model, TieredLoadCostModel)
        assert self.model.bandwidth_bytes_per_s == self.static.bandwidth_bytes_per_s

    def test_static_fallback_before_warmup(self):
        size = 4 << 20
        for tier in (StorageTier.HOT, StorageTier.COLD):
            assert self.model.cost_for_tier(size, tier) == (
                self.static.cost_for_tier(size, tier)
            )

    def test_learned_cost_once_healthy(self):
        _train_cold(self.collector)
        learned = self.model.cost_for_tier(2 << 20, StorageTier.COLD)
        assert learned == pytest.approx(_LATENCY + 2 * _SECS_PER_MIB, rel=0.05)
        assert learned != self.static.cost_for_tier(2 << 20, StorageTier.COLD)
        # the hot model saw nothing: still static
        assert self.model.cost_for_tier(2 << 20, StorageTier.HOT) == (
            self.static.cost_for_tier(2 << 20, StorageTier.HOT)
        )


class TestReuseValueScorer:
    def setup_method(self):
        self.collector = FeedbackCollector(registry=MetricsRegistry())
        self.scorer = ReuseValueScorer(self.collector)

    def _candidate(self, access_count: int, age: int, size: int = 2048):
        return EvictionCandidate(
            vertex_id="v",
            size_bytes=size,
            n_columns=1,
            access_count=access_count,
            age=age,
        )

    def test_never_accessed_scores_zero(self):
        assert self.scorer(self._candidate(access_count=0, age=0)) == 0.0

    def test_hotter_artifact_scores_higher(self):
        cold = self.scorer(self._candidate(access_count=1, age=0))
        hot = self.scorer(self._candidate(access_count=10, age=0))
        assert hot > cold > 0.0

    def test_recency_decay_halves_per_halflife(self):
        half = self.collector.config.recency_halflife
        fresh = self.scorer(self._candidate(access_count=4, age=0))
        stale = self.scorer(self._candidate(access_count=4, age=int(half)))
        assert stale == pytest.approx(fresh / 2.0)

    def test_stale_count_loses_to_live_recency(self):
        # a dead twice-read artifact must drop below a live once-read one
        halflife = self.collector.config.recency_halflife
        dead = self.scorer(self._candidate(access_count=2, age=int(3 * halflife)))
        live = self.scorer(self._candidate(access_count=1, age=0))
        assert dead < live

    def test_larger_artifact_pays_per_byte(self):
        small = self.scorer(self._candidate(access_count=4, age=0, size=2048))
        # 4x the size but the same reuse: reload cost grows sub-linearly
        # at these sizes (latency-dominated), so value-per-byte drops
        large = self.scorer(self._candidate(access_count=4, age=0, size=8192))
        assert large < small

    def test_rejects_non_positive_halflife(self):
        with pytest.raises(ValueError):
            ReuseValueScorer(self.collector, recency_halflife=0.0)


class TestAdaptiveBatchSizer:
    def setup_method(self):
        self.collector = FeedbackCollector(registry=MetricsRegistry())

    def _sizer(self, **kwargs) -> AdaptiveBatchSizer:
        kwargs.setdefault("registry", MetricsRegistry())
        return AdaptiveBatchSizer(self.collector, **kwargs)

    def test_heuristic_backs_off_when_wait_dominates(self):
        sizer = self._sizer(initial_linger_s=0.1)
        before = sizer.current_linger()
        sizer.observe_batch(batch_size=8, merge_seconds=0.001, mean_wait_s=0.05)
        assert sizer.current_linger() < before

    def test_heuristic_grows_when_batches_stay_singletons(self):
        sizer = self._sizer(initial_linger_s=0.01)
        before = sizer.current_linger()
        sizer.observe_batch(batch_size=1, merge_seconds=0.002, mean_wait_s=0.001)
        assert sizer.current_linger() > before

    def test_converges_to_closed_form_optimum(self):
        # train on a known cost model: merge = fixed + marginal * batch.
        # once the merge model is healthy the linger must settle around
        # l* = sqrt(2 * fixed / lam)
        fixed, marginal = 0.02, 0.001
        sizer = self._sizer(initial_linger_s=0.02, smoothing=0.5)
        for _ in range(200):
            linger = sizer.current_linger()
            # deterministic arrivals at 100 workloads/s
            batch = max(1, round(100.0 * (linger + fixed)))
            sizer.observe_batch(
                batch_size=batch,
                merge_seconds=fixed + marginal * batch,
                mean_wait_s=linger / 2.0,
            )
        lam = sizer.arrival_rate
        expected = (2.0 * fixed / lam) ** 0.5
        assert sizer.current_linger() == pytest.approx(expected, rel=0.15)

    def test_linger_clamped_to_configured_bounds(self):
        # min_samples keeps the merge model cold so the bang-bang
        # heuristic (not the closed form) drives the linger to each bound
        config = AdaptiveConfig(
            min_samples=10_000, min_linger_s=0.01, max_linger_s=0.05
        )
        collector = FeedbackCollector(config=config, registry=MetricsRegistry())
        sizer = AdaptiveBatchSizer(
            collector, initial_linger_s=0.02, registry=MetricsRegistry()
        )
        for _ in range(50):
            sizer.observe_batch(batch_size=1, merge_seconds=0.001, mean_wait_s=0.0)
        assert sizer.current_linger() == config.max_linger_s
        for _ in range(200):
            sizer.observe_batch(batch_size=16, merge_seconds=0.001, mean_wait_s=1.0)
        assert sizer.current_linger() == config.min_linger_s

    def test_trajectory_is_bounded(self):
        sizer = self._sizer()
        for _ in range(AdaptiveBatchSizer.TRAJECTORY_LIMIT + 50):
            sizer.observe_batch(batch_size=2, merge_seconds=0.001, mean_wait_s=0.001)
        assert len(sizer.trajectory) == AdaptiveBatchSizer.TRAJECTORY_LIMIT
        assert sizer.report()["batches_observed"] == (
            AdaptiveBatchSizer.TRAJECTORY_LIMIT + 50
        )

    def test_rejects_out_of_bounds_initial_linger(self):
        with pytest.raises(ValueError):
            self._sizer(initial_linger_s=10.0)

    def test_ignores_empty_batches(self):
        sizer = self._sizer()
        sizer.observe_batch(batch_size=0, merge_seconds=0.0, mean_wait_s=0.0)
        assert sizer.report()["batches_observed"] == 0
