"""Online regressor correctness: convergence, drift, fallback, determinism."""

import numpy as np
import pytest

from repro.learn import OnlinePredictor, RecursiveLeastSquares


def _samples(weights, n, seed, lo=0.0, hi=4.0):
    """Deterministic (features, target) stream from a known linear model."""
    rng = np.random.default_rng(seed)
    for _ in range(n):
        x = np.concatenate(([1.0], rng.uniform(lo, hi, size=len(weights) - 1)))
        yield x, float(np.asarray(weights) @ x)


class TestRecursiveLeastSquares:
    def test_converges_to_known_linear_model(self):
        true_w = [0.5, 2.0, -1.0]
        rls = RecursiveLeastSquares(3)
        for x, y in _samples(true_w, 200, seed=1):
            rls.update(x, y)
        assert np.allclose(rls.weights, true_w, atol=1e-6)

    def test_update_returns_a_priori_prediction(self):
        rls = RecursiveLeastSquares(2)
        first = rls.update([1.0, 1.0], 3.0)
        assert first == 0.0  # zero-initialized weights predict 0 before fitting
        assert rls.predict([1.0, 1.0]) != 0.0

    def test_forgetting_tracks_drift(self):
        rls = RecursiveLeastSquares(2, forgetting=0.9)
        for x, y in _samples([1.0, 1.0], 100, seed=2):
            rls.update(x, y)
        for x, y in _samples([5.0, -2.0], 200, seed=3):
            rls.update(x, y)
        assert np.allclose(rls.weights, [5.0, -2.0], atol=1e-3)

    def test_deterministic_across_instances(self):
        a = RecursiveLeastSquares(3)
        b = RecursiveLeastSquares(3)
        for x, y in _samples([1.0, 0.5, 2.0], 50, seed=4):
            a.update(x, y)
        for x, y in _samples([1.0, 0.5, 2.0], 50, seed=4):
            b.update(x, y)
        assert np.array_equal(a.weights, b.weights)
        probe = [1.0, 2.0, 3.0]
        assert a.predict(probe) == b.predict(probe)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RecursiveLeastSquares(0)
        with pytest.raises(ValueError):
            RecursiveLeastSquares(2, forgetting=0.0)
        with pytest.raises(ValueError):
            RecursiveLeastSquares(2, forgetting=1.5)


class TestOnlinePredictor:
    def test_withholds_predictions_before_warmup(self):
        predictor = OnlinePredictor(2, min_samples=10)
        for x, y in _samples([1.0, 2.0], 9, seed=5):
            predictor.observe(x, y)
        assert not predictor.warmed_up
        assert predictor.predict([1.0, 1.0]) is None
        assert predictor.fallbacks == 1

    def test_healthy_after_learnable_warmup(self):
        predictor = OnlinePredictor(2, min_samples=10)
        for x, y in _samples([1.0, 2.0], 50, seed=6):
            predictor.observe(x, y)
        assert predictor.healthy
        value = predictor.predict([1.0, 3.0])
        assert value == pytest.approx(1.0 + 2.0 * 3.0, rel=1e-6)

    def test_fallback_triggers_on_distribution_shift(self):
        predictor = OnlinePredictor(
            2, min_samples=10, error_threshold=0.3, error_decay=0.8
        )
        for x, y in _samples([1.0, 2.0], 50, seed=7):
            predictor.observe(x, y)
        assert predictor.healthy
        # the world changes: targets now follow a very different model
        shifted = 0
        for x, y in _samples([40.0, -9.0], 10, seed=8):
            predictor.observe(x, y)
            if not predictor.healthy:
                shifted += 1
        assert shifted > 0, "error EWMA never crossed the fallback threshold"
        assert predictor.predict([1.0, 1.0]) is None

    def test_recovers_health_after_refit(self):
        predictor = OnlinePredictor(
            2, min_samples=5, error_threshold=0.3, error_decay=0.5, forgetting=0.9
        )
        for x, y in _samples([1.0, 2.0], 30, seed=9):
            predictor.observe(x, y)
        for x, y in _samples([8.0, -3.0], 5, seed=10):
            predictor.observe(x, y)
        assert not predictor.healthy
        for x, y in _samples([8.0, -3.0], 100, seed=11):
            predictor.observe(x, y)
        assert predictor.healthy  # refit on the new distribution, error decayed

    def test_rejects_negative_prediction(self):
        predictor = OnlinePredictor(2, min_samples=4)
        # fit y = -1 * x1: extrapolations are negative; costs must not be
        for x, y in _samples([0.0, -1.0], 30, seed=12):
            predictor.observe(x, y)
        assert predictor.predict([1.0, 5.0]) is None

    def test_error_ewma_ignores_warmup_misses(self):
        predictor = OnlinePredictor(2, min_samples=20)
        for x, y in _samples([10.0, 10.0], 19, seed=13):
            predictor.observe(x, y)
        assert predictor.error_ewma == 0.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            OnlinePredictor(2, min_samples=0)
        with pytest.raises(ValueError):
            OnlinePredictor(2, error_threshold=0.0)
        with pytest.raises(ValueError):
            OnlinePredictor(2, error_decay=1.0)
