"""FeedbackCollector: observation ingestion, prediction, span sinks, metrics."""

from dataclasses import dataclass, field
from typing import Any

import pytest

from repro.eg.storage import StorageTier
from repro.learn import FeedbackCollector, LoadObservation
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

_COLD = StorageTier.COLD
_HOT = StorageTier.HOT

# the synthetic ground truth the collector should learn: retrieval time is
# a pure bandwidth model, seconds = size_mib * secs_per_mib + latency
_SECS_PER_MIB = 0.010
_LATENCY = 0.002


def _cold_observation(i: int, size_bytes: int) -> LoadObservation:
    return LoadObservation(
        vertex_id=f"v{i}",
        size_bytes=size_bytes,
        n_columns=4,
        object_columns=0,
        tier=_COLD,
        seconds=_LATENCY + (size_bytes / float(1 << 20)) * _SECS_PER_MIB,
    )


def _train_cold(collector: FeedbackCollector, n: int = 40) -> None:
    for i in range(n):
        collector.observe_load(_cold_observation(i, (i % 8 + 1) * (1 << 18)))


class TestFeedbackCollector:
    def setup_method(self):
        self.registry = MetricsRegistry()
        self.collector = FeedbackCollector(registry=self.registry)

    def test_predict_falls_back_until_warm(self):
        assert self.collector.predict_load(1 << 20, _COLD) is None
        counter = self.registry.counter(
            "repro_learn_predictions_total", labelnames=("model", "source")
        )
        assert counter.value(model="load_cold", source="static") == 1.0

    def test_learns_linear_load_cost(self):
        _train_cold(self.collector)
        predicted = self.collector.predict_load(2 << 20, _COLD, n_columns=4)
        assert predicted == pytest.approx(_LATENCY + 2 * _SECS_PER_MIB, rel=0.05)

    def test_prediction_without_columns_uses_rolling_mean(self):
        _train_cold(self.collector)
        # the planner only knows (size, tier); the rolling per-tier mean
        # must fill in the column feature so the prediction stays usable
        predicted = self.collector.predict_load(2 << 20, _COLD)
        assert predicted is not None
        assert predicted == pytest.approx(_LATENCY + 2 * _SECS_PER_MIB, rel=0.05)

    def test_tiers_train_independent_models(self):
        _train_cold(self.collector)
        assert self.collector.predict_load(1 << 20, _COLD) is not None
        assert self.collector.predict_load(1 << 20, _HOT) is None

    def test_observe_cold_load_matches_store_hook_shape(self):
        for i in range(40):
            size = (i % 8 + 1) * (1 << 18)
            self.collector.observe_cold_load(
                vertex_id=f"v{i}",
                size_bytes=size,
                n_columns=4,
                object_columns=0,
                seconds=_LATENCY + (size / float(1 << 20)) * _SECS_PER_MIB,
            )
        assert self.collector.predict_load(1 << 20, _COLD) is not None

    def test_cold_hit_rate_tracks_tier_mix(self):
        assert self.collector.cold_hit_rate == 0.0
        for i in range(30):
            self.collector.observe_load(_cold_observation(i, 1 << 20))
        assert self.collector.cold_hit_rate > 0.5

    def test_queue_depth_probe_failures_are_swallowed(self):
        def exploding_probe() -> float:
            raise RuntimeError("probe raced a shutdown")

        self.collector.queue_depth_fn = exploding_probe
        _train_cold(self.collector)
        assert self.collector.predict_load(1 << 20, _COLD) is not None

    def test_merge_cost_params_expose_fixed_and_marginal(self):
        assert self.collector.merge_cost_params() is None
        for i in range(40):
            batch = i % 6 + 1
            self.collector.observe_merge(batch, 0.02 + 0.004 * batch)
        params = self.collector.merge_cost_params()
        assert params is not None
        fixed, marginal = params
        assert fixed == pytest.approx(0.02, rel=0.05)
        assert marginal == pytest.approx(0.004, rel=0.05)

    def test_metrics_published_per_model(self):
        _train_cold(self.collector, n=20)
        samples = self.registry.counter(
            "repro_learn_samples_total", labelnames=("model",)
        )
        healthy = self.registry.gauge(
            "repro_learn_predictor_healthy", labelnames=("model",)
        )
        assert samples.value(model="load_cold") == 20.0
        assert healthy.value(model="load_cold") == 1.0

    def test_report_lists_every_predictor(self):
        report = self.collector.report()
        assert set(report) == {"load_hot", "load_cold", "compute", "merge"}
        for summary in report.values():
            assert {"samples", "error_ewma", "healthy", "fallbacks", "predictions"} <= (
                set(summary)
            )

    def test_compute_predictor_round_trip(self):
        for i in range(40):
            size = (i % 8 + 1) * (1 << 18)
            self.collector.observe_compute(size, 4, 0.001 + size * 1e-9)
        predicted = self.collector.predict_compute(2 << 20, 4)
        assert predicted == pytest.approx(0.001 + (2 << 20) * 1e-9, rel=0.05)


@dataclass
class _FakeSpan:
    """Minimal span-shaped record for deterministic sink-ingestion tests."""

    name: str
    attributes: dict[str, Any] = field(default_factory=dict)
    finished: bool = True
    duration_s: float = 0.0


class TestSpanIngestion:
    def setup_method(self):
        self.registry = MetricsRegistry()
        self.collector = FeedbackCollector(registry=self.registry)

    def test_cold_load_spans_train_the_cold_model(self):
        for i in range(40):
            size = (i % 8 + 1) * (1 << 18)
            self.collector.on_span(
                _FakeSpan(
                    name="store.cold_load",
                    attributes={
                        "vertex": f"v{i}",
                        "size_bytes": size,
                        "n_columns": 4,
                        "object_columns": 0,
                        "read_seconds": _LATENCY
                        + (size / float(1 << 20)) * _SECS_PER_MIB,
                    },
                )
            )
        assert self.collector.predict_load(1 << 20, _COLD) is not None

    def test_merge_spans_train_the_merge_model(self):
        for i in range(40):
            batch = i % 6 + 1
            self.collector.on_span(
                _FakeSpan(
                    name="service.merge_batch",
                    attributes={"batch_size": batch},
                    duration_s=0.02 + 0.004 * batch,
                )
            )
        assert self.collector.merge_cost_params() is not None

    def test_malformed_and_unknown_spans_are_ignored(self):
        self.collector.on_span(_FakeSpan(name="store.cold_load"))  # no attrs
        self.collector.on_span(
            _FakeSpan(
                name="store.cold_load",
                attributes={"size_bytes": "not-a-number", "read_seconds": 0.1},
            )
        )
        self.collector.on_span(_FakeSpan(name="planner.optimize"))
        assert self.collector.report()["load_cold"]["samples"] == 0.0

    def test_attach_receives_real_tracer_spans(self):
        tracer = Tracer()
        self.collector.attach(tracer)
        span = tracer.span(
            "store.cold_load",
            vertex="v0",
            size_bytes=1 << 20,
            n_columns=2,
            object_columns=0,
            read_seconds=0.012,
        )
        span.finish()
        assert self.collector.report()["load_cold"]["samples"] == 1.0
