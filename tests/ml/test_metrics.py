"""Tests for evaluation metrics."""

import numpy as np
import pytest

from repro.ml import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    log_loss,
    mean_absolute_error,
    mean_squared_error,
    precision_recall_curve,
    precision_score,
    r2_score,
    recall_score,
    roc_auc_score,
    roc_curve,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score([1, 0, 1], [1, 0, 1]) == 1.0

    def test_half(self):
        assert accuracy_score([1, 0], [1, 1]) == 0.5

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            accuracy_score([1], [1, 0])

    def test_empty(self):
        with pytest.raises(ValueError, match="empty"):
            accuracy_score([], [])


class TestRocAuc:
    def test_perfect_ranking(self):
        assert roc_auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_inverted_ranking(self):
        assert roc_auc_score([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_random_is_half(self):
        assert roc_auc_score([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5]) == pytest.approx(0.5)

    def test_ties_use_midranks(self):
        # one tie between a positive and a negative contributes 0.5
        auc = roc_auc_score([0, 1, 1], [0.3, 0.3, 0.9])
        assert auc == pytest.approx(0.75)

    def test_single_class_raises(self):
        with pytest.raises(ValueError, match="both classes"):
            roc_auc_score([1, 1], [0.5, 0.6])

    def test_invariant_to_monotone_transform(self):
        y = np.asarray([0, 1, 0, 1, 1, 0])
        s = np.asarray([0.1, 0.7, 0.3, 0.9, 0.6, 0.2])
        assert roc_auc_score(y, s) == pytest.approx(roc_auc_score(y, s * 10 + 3))


class TestLogLoss:
    def test_confident_correct_is_small(self):
        assert log_loss([1, 0], [0.99, 0.01]) < 0.02

    def test_confident_wrong_is_large(self):
        assert log_loss([1, 0], [0.01, 0.99]) > 4.0

    def test_clipping_avoids_infinity(self):
        assert np.isfinite(log_loss([1], [0.0]))


class TestConfusionDerived:
    def test_confusion_matrix(self):
        matrix = confusion_matrix([1, 1, 0, 0], [1, 0, 0, 1])
        assert matrix.tolist() == [[1, 1], [1, 1]]

    def test_precision(self):
        assert precision_score([1, 0, 0], [1, 1, 0]) == 0.5

    def test_recall(self):
        assert recall_score([1, 1, 0], [1, 0, 0]) == 0.5

    def test_f1_harmonic_mean(self):
        y_true = [1, 1, 0, 0]
        y_pred = [1, 0, 0, 0]
        p, r = precision_score(y_true, y_pred), recall_score(y_true, y_pred)
        assert f1_score(y_true, y_pred) == pytest.approx(2 * p * r / (p + r))

    def test_f1_zero_when_no_positives_predicted(self):
        assert f1_score([1, 1], [0, 0]) == 0.0


class TestCurves:
    def test_roc_curve_perfect_classifier(self):
        fpr, tpr, thresholds = roc_curve([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9])
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        # TPR reaches 1.0 before any false positive
        assert tpr[np.flatnonzero(fpr > 0)[0] - 1] == 1.0

    def test_roc_curve_monotone(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=50)
        y[:2] = [0, 1]
        s = rng.random(50)
        fpr, tpr, _ = roc_curve(y, s)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)

    def test_roc_curve_area_matches_auc(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, size=100)
        y[:2] = [0, 1]
        s = rng.random(100)
        fpr, tpr, _ = roc_curve(y, s)
        area = float(np.trapezoid(tpr, fpr))
        assert area == pytest.approx(roc_auc_score(y, s), abs=1e-9)

    def test_roc_curve_requires_both_classes(self):
        with pytest.raises(ValueError):
            roc_curve([1, 1], [0.1, 0.9])

    def test_pr_curve_perfect_classifier(self):
        precision, recall, _ = precision_recall_curve([0, 1, 1], [0.1, 0.8, 0.9])
        assert precision[0] == 1.0
        assert recall[-1] == 1.0

    def test_pr_curve_thresholds_decreasing(self):
        rng = np.random.default_rng(2)
        y = rng.integers(0, 2, size=40)
        y[0] = 1
        s = rng.random(40)
        _p, _r, thresholds = precision_recall_curve(y, s)
        assert np.all(np.diff(thresholds) <= 0)

    def test_pr_curve_recall_monotone(self):
        rng = np.random.default_rng(3)
        y = rng.integers(0, 2, size=40)
        y[0] = 1
        s = rng.random(40)
        _p, recall, _t = precision_recall_curve(y, s)
        assert np.all(np.diff(recall) >= 0)

    def test_pr_curve_requires_positives(self):
        with pytest.raises(ValueError):
            precision_recall_curve([0, 0], [0.2, 0.4])


class TestRegressionMetrics:
    def test_mse(self):
        assert mean_squared_error([1.0, 2.0], [1.0, 4.0]) == 2.0

    def test_mae(self):
        assert mean_absolute_error([1.0, 2.0], [2.0, 4.0]) == 1.5

    def test_r2_perfect(self):
        assert r2_score([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 1.0

    def test_r2_mean_predictor_is_zero(self):
        y = np.asarray([1.0, 2.0, 3.0])
        assert r2_score(y, np.full(3, y.mean())) == pytest.approx(0.0)

    def test_r2_constant_truth(self):
        assert r2_score([1.0, 1.0], [1.0, 1.0]) == 1.0
        assert r2_score([1.0, 1.0], [2.0, 2.0]) == 0.0
