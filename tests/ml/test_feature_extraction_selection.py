"""Tests for text vectorizers, feature selection, and decompositions."""

import numpy as np
import pytest

from repro.ml import (
    PCA,
    CountVectorizer,
    HashingVectorizer,
    SelectKBest,
    TfidfVectorizer,
    TruncatedSVD,
    VarianceThreshold,
    chi2,
    f_classif,
    mutual_info_classif,
)

DOCS = np.asarray(
    [
        "the quick brown fox",
        "the lazy dog",
        "quick quick fox",
        None,
    ],
    dtype=object,
)


class TestCountVectorizer:
    def test_vocabulary(self):
        vec = CountVectorizer().fit(DOCS)
        assert "quick" in vec.vocabulary_
        assert "the" in vec.vocabulary_

    def test_counts(self):
        vec = CountVectorizer().fit(DOCS)
        matrix = vec.transform(DOCS)
        quick = vec.vocabulary_["quick"]
        assert matrix[2, quick] == 2.0

    def test_none_document_is_empty(self):
        vec = CountVectorizer().fit(DOCS)
        assert vec.transform(DOCS)[3].sum() == 0.0

    def test_max_features_keeps_most_frequent(self):
        vec = CountVectorizer(max_features=2).fit(DOCS)
        assert len(vec.vocabulary_) == 2
        assert "quick" in vec.vocabulary_

    def test_min_df(self):
        vec = CountVectorizer(min_df=2).fit(DOCS)
        assert "lazy" not in vec.vocabulary_
        assert "quick" in vec.vocabulary_

    def test_binary_mode(self):
        vec = CountVectorizer(binary=True).fit(DOCS)
        assert vec.transform(DOCS).max() == 1.0

    def test_short_tokens_dropped(self):
        vec = CountVectorizer().fit(np.asarray(["a I at"], dtype=object))
        assert "a" not in vec.vocabulary_
        assert "at" in vec.vocabulary_

    def test_feature_names_sorted(self):
        vec = CountVectorizer().fit(DOCS)
        names = vec.get_feature_names()
        assert names == sorted(names)


class TestTfidf:
    def test_rows_l2_normalized(self):
        matrix = TfidfVectorizer().fit_transform(DOCS[:3])
        norms = np.linalg.norm(matrix, axis=1)
        assert np.allclose(norms, 1.0)

    def test_rare_terms_weighted_higher(self):
        vec = TfidfVectorizer().fit(DOCS[:3])
        # 'lazy' appears in 1 doc, 'the' in 2 -> higher idf for 'lazy'
        assert vec.idf_[vec.vocabulary_["lazy"]] > vec.idf_[vec.vocabulary_["the"]]


class TestHashingVectorizer:
    def test_fixed_width(self):
        matrix = HashingVectorizer(n_features=16).fit_transform(DOCS)
        assert matrix.shape == (4, 16)

    def test_deterministic(self):
        a = HashingVectorizer(n_features=32).fit_transform(DOCS)
        b = HashingVectorizer(n_features=32).fit_transform(DOCS)
        assert np.array_equal(a, b)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            HashingVectorizer(n_features=0)


class TestScoreFunctions:
    @pytest.fixture
    def informative_data(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=300)
        informative = y * 2.0 + rng.normal(scale=0.3, size=300)
        noise = rng.normal(size=300)
        X = np.column_stack([noise, informative])
        return X, y

    def test_f_classif_ranks_informative_higher(self, informative_data):
        X, y = informative_data
        scores = f_classif(X, y)
        assert scores[1] > scores[0]

    def test_chi2_requires_nonnegative(self):
        with pytest.raises(ValueError, match="non-negative"):
            chi2(np.asarray([[-1.0]]), np.asarray([0]))

    def test_chi2_ranks_informative_higher(self, informative_data):
        X, y = informative_data
        scores = chi2(np.abs(X), y)
        assert scores[1] > scores[0]

    def test_mutual_info_ranks_informative_higher(self, informative_data):
        X, y = informative_data
        scores = mutual_info_classif(X, y)
        assert scores[1] > scores[0]

    def test_mutual_info_constant_feature_zero(self):
        X = np.column_stack([np.ones(50)])
        y = np.arange(50) % 2
        assert mutual_info_classif(X, y)[0] == 0.0


class TestSelectKBest:
    def test_selects_k(self, labeled_data):
        X, y = labeled_data
        selector = SelectKBest(k=2).fit(X, y)
        assert selector.transform(X).shape == (len(X), 2)

    def test_k_larger_than_features(self, labeled_data):
        X, y = labeled_data
        selector = SelectKBest(k=100).fit(X, y)
        assert selector.transform(X).shape == X.shape

    def test_support_mask(self, labeled_data):
        X, y = labeled_data
        selector = SelectKBest(k=2).fit(X, y)
        assert selector.get_support().sum() == 2

    def test_keeps_column_order(self, labeled_data):
        X, y = labeled_data
        selector = SelectKBest(k=3).fit(X, y)
        assert list(selector.selected_) == sorted(selector.selected_)


class TestVarianceThreshold:
    def test_drops_constant(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        out = VarianceThreshold().fit_transform(X)
        assert out.shape == (10, 1)

    def test_all_dropped_raises(self):
        with pytest.raises(ValueError, match="threshold"):
            VarianceThreshold().fit(np.ones((5, 2)))


class TestPCA:
    def test_components_orthonormal(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 5))
        pca = PCA(n_components=3).fit(X)
        gram = pca.components_ @ pca.components_.T
        assert np.allclose(gram, np.eye(3), atol=1e-8)

    def test_first_component_captures_dominant_direction(self):
        rng = np.random.default_rng(0)
        t = rng.normal(size=200)
        X = np.column_stack([t * 10, t * 10 + rng.normal(scale=0.1, size=200)])
        pca = PCA(n_components=1).fit(X)
        assert pca.explained_variance_ratio_[0] > 0.99

    def test_transform_shape(self):
        X = np.random.default_rng(1).normal(size=(30, 6))
        assert PCA(n_components=2).fit_transform(X).shape == (30, 2)

    def test_inverse_transform_approximates(self):
        rng = np.random.default_rng(0)
        t = rng.normal(size=(50, 1))
        X = np.hstack([t, 2 * t, 3 * t])  # rank 1
        pca = PCA(n_components=1).fit(X)
        reconstructed = pca.inverse_transform(pca.transform(X))
        assert np.allclose(reconstructed, X, atol=1e-8)

    def test_deterministic_sign(self):
        X = np.random.default_rng(2).normal(size=(40, 4))
        a = PCA(n_components=2).fit(X).components_
        b = PCA(n_components=2).fit(X).components_
        assert np.allclose(a, b)

    def test_n_components_capped(self):
        X = np.random.default_rng(0).normal(size=(5, 3))
        pca = PCA(n_components=10).fit(X)
        assert pca.components_.shape[0] == 3


class TestTruncatedSVD:
    def test_shape(self):
        X = np.abs(np.random.default_rng(0).normal(size=(20, 7)))
        assert TruncatedSVD(n_components=3).fit_transform(X).shape == (20, 3)

    def test_no_centering(self):
        # rank-1 non-centered data is captured exactly without centering
        X = np.outer(np.arange(1, 11.0), np.asarray([1.0, 2.0]))
        svd = TruncatedSVD(n_components=1).fit(X)
        Z = svd.transform(X)
        reconstructed = Z @ svd.components_
        assert np.allclose(reconstructed, X)
