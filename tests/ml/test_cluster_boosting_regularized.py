"""Tests for KMeans, AdaBoost, Ridge, and Lasso."""

import numpy as np
import pytest

from repro.ml import AdaBoostClassifier, KMeans, Lasso, LinearRegression, Ridge


@pytest.fixture
def blobs():
    rng = np.random.default_rng(0)
    centers = np.asarray([[-5.0, -5.0], [5.0, 5.0], [5.0, -5.0]])
    X = np.vstack([c + rng.normal(scale=0.5, size=(40, 2)) for c in centers])
    labels = np.repeat(np.arange(3), 40)
    return X, labels


class TestKMeans:
    def test_recovers_blobs(self, blobs):
        X, truth = blobs
        model = KMeans(n_clusters=3, random_state=1).fit(X)
        # each true blob maps to exactly one cluster
        for c in range(3):
            assigned = model.labels_[truth == c]
            assert len(np.unique(assigned)) == 1

    def test_centers_near_truth(self, blobs):
        X, _ = blobs
        model = KMeans(n_clusters=3, random_state=1).fit(X)
        found = {tuple(np.round(c)) for c in model.cluster_centers_}
        assert found == {(-5.0, -5.0), (5.0, 5.0), (5.0, -5.0)}

    def test_predict_matches_fit_labels(self, blobs):
        X, _ = blobs
        model = KMeans(n_clusters=3, random_state=1).fit(X)
        assert np.array_equal(model.predict(X), model.labels_)

    def test_transform_shape_and_nonneg(self, blobs):
        X, _ = blobs
        distances = KMeans(n_clusters=3, random_state=1).fit(X).transform(X)
        assert distances.shape == (len(X), 3)
        assert (distances >= 0).all()

    def test_inertia_decreases_with_k(self, blobs):
        X, _ = blobs
        inertia_small = KMeans(n_clusters=2, random_state=1).fit(X).inertia_
        inertia_large = KMeans(n_clusters=3, random_state=1).fit(X).inertia_
        assert inertia_large < inertia_small

    def test_deterministic(self, blobs):
        X, _ = blobs
        a = KMeans(n_clusters=3, random_state=5).fit(X)
        b = KMeans(n_clusters=3, random_state=5).fit(X)
        assert np.array_equal(a.labels_, b.labels_)

    def test_too_many_clusters(self):
        with pytest.raises(ValueError, match="exceeds"):
            KMeans(n_clusters=10).fit(np.zeros((3, 2)))

    def test_degenerate_identical_points(self):
        X = np.ones((20, 2))
        model = KMeans(n_clusters=2, random_state=0).fit(X)
        assert model.inertia_ == pytest.approx(0.0)


class TestAdaBoost:
    def test_learns_nonlinear(self, labeled_data):
        X, y = labeled_data
        model = AdaBoostClassifier(n_estimators=20, max_depth=2).fit(X, y)
        assert model.score(X, y) > 0.85

    def test_stumps_weaker_than_trees(self, labeled_data):
        X, y = labeled_data
        stumps = AdaBoostClassifier(n_estimators=3, max_depth=1).fit(X, y)
        trees = AdaBoostClassifier(n_estimators=20, max_depth=2).fit(X, y)
        assert trees.score(X, y) >= stumps.score(X, y)

    def test_warmstart_continues(self, labeled_data):
        X, y = labeled_data
        base = AdaBoostClassifier(n_estimators=5, max_depth=1).fit(X, y)
        warm = AdaBoostClassifier(n_estimators=12, max_depth=1)
        warm.fit(X, y, warm_start_from=base)
        assert warm.warm_started_
        assert warm.n_rounds_trained_ == 7
        assert warm.estimators_[0] is base.estimators_[0]

    def test_proba_valid(self, labeled_data):
        X, y = labeled_data
        proba = AdaBoostClassifier(n_estimators=5).fit(X, y).predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_rejects_multiclass(self):
        with pytest.raises(ValueError):
            AdaBoostClassifier().fit(np.zeros((3, 1)), np.asarray([0, 1, 2]))


class TestRidgeLasso:
    @pytest.fixture
    def linear_data(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 5))
        true_w = np.asarray([3.0, -2.0, 0.0, 0.0, 1.0])
        y = X @ true_w + 0.5 + rng.normal(scale=0.05, size=100)
        return X, y, true_w

    def test_ridge_recovers_weights(self, linear_data):
        X, y, true_w = linear_data
        model = Ridge(alpha=0.01).fit(X, y)
        assert np.allclose(model.coef_, true_w, atol=0.1)
        assert model.score(X, y) > 0.99

    def test_ridge_shrinks_with_alpha(self, linear_data):
        X, y, _ = linear_data
        small = Ridge(alpha=0.01).fit(X, y)
        large = Ridge(alpha=1000.0).fit(X, y)
        assert np.linalg.norm(large.coef_) < np.linalg.norm(small.coef_)

    def test_ridge_alpha_zero_equals_ols(self, linear_data):
        X, y, _ = linear_data
        ridge = Ridge(alpha=0.0).fit(X, y)
        ols = LinearRegression().fit(X, y)
        assert np.allclose(ridge.coef_, ols.coef_, atol=1e-8)

    def test_lasso_sparsifies(self, linear_data):
        X, y, true_w = linear_data
        model = Lasso(alpha=0.1).fit(X, y)
        assert model.coef_[2] == pytest.approx(0.0, abs=0.02)
        assert model.coef_[3] == pytest.approx(0.0, abs=0.02)
        assert abs(model.coef_[0]) > 1.0

    def test_lasso_huge_alpha_zeroes_everything(self, linear_data):
        X, y, _ = linear_data
        model = Lasso(alpha=1e6).fit(X, y)
        assert np.allclose(model.coef_, 0.0)
        assert model.intercept_ == pytest.approx(np.mean(y))

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            Ridge(alpha=-1.0)
        with pytest.raises(ValueError):
            Lasso(alpha=-1.0)

    def test_lasso_constant_feature_ignored(self):
        X = np.column_stack([np.ones(50), np.arange(50.0)])
        y = 2.0 * X[:, 1]
        model = Lasso(alpha=0.01).fit(X, y)
        assert model.predict(X) == pytest.approx(y, abs=1.0)
