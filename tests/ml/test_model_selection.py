"""Tests for splitting and hyperparameter search."""

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeClassifier,
    GaussianNB,
    GridSearchCV,
    KFold,
    KNeighborsClassifier,
    LogisticRegression,
    RandomizedSearchCV,
    StratifiedKFold,
    cross_val_score,
    train_test_split,
)


class TestTrainTestSplit:
    def test_sizes(self, labeled_data):
        X, y = labeled_data
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.25)
        assert len(X_te) == 50
        assert len(X_tr) == 150
        assert len(y_tr) == 150

    def test_deterministic(self, labeled_data):
        X, y = labeled_data
        a = train_test_split(X, y, random_state=4)[0]
        b = train_test_split(X, y, random_state=4)[0]
        assert np.array_equal(a, b)

    def test_disjoint(self, labeled_data):
        X, y = labeled_data
        X = np.arange(len(y)).reshape(-1, 1)
        X_tr, X_te, *_ = train_test_split(X, y)
        assert not set(X_tr.ravel()) & set(X_te.ravel())

    def test_stratified_preserves_ratio(self):
        y = np.asarray([0] * 80 + [1] * 20)
        X = np.zeros((100, 1))
        _, _, _, y_te = train_test_split(X, y, test_size=0.25, stratify=True)
        assert abs(np.mean(y_te) - 0.2) < 0.05

    def test_invalid_test_size(self, labeled_data):
        X, y = labeled_data
        with pytest.raises(ValueError):
            train_test_split(X, y, test_size=1.5)


class TestKFold:
    def test_covers_all_indices_once(self):
        X = np.zeros((10, 1))
        seen = []
        for _train, test in KFold(n_splits=5).split(X):
            seen.extend(test)
        assert sorted(seen) == list(range(10))

    def test_train_test_disjoint(self):
        X = np.zeros((10, 1))
        for train, test in KFold(n_splits=3).split(X):
            assert not set(train) & set(test)

    def test_uneven_sizes(self):
        X = np.zeros((7, 1))
        sizes = [len(test) for _, test in KFold(n_splits=3).split(X)]
        assert sorted(sizes) == [2, 2, 3]

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=5).split(np.zeros((3, 1))))

    def test_min_splits(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)


class TestStratifiedKFold:
    def test_every_fold_has_both_classes(self):
        y = np.asarray([0] * 30 + [1] * 6)
        X = np.zeros((36, 1))
        for _train, test in StratifiedKFold(n_splits=3).split(X, y):
            assert len(set(y[test])) == 2

    def test_partition(self):
        y = np.asarray([0, 1] * 10)
        X = np.zeros((20, 1))
        seen = []
        for _train, test in StratifiedKFold(n_splits=4).split(X, y):
            seen.extend(test)
        assert sorted(seen) == list(range(20))


class TestCrossValScore:
    def test_returns_per_fold(self, labeled_data):
        X, y = labeled_data
        scores = cross_val_score(GaussianNB(), X, y, cv=4)
        assert scores.shape == (4,)
        assert scores.mean() > 0.7

    def test_custom_scoring(self, labeled_data):
        X, y = labeled_data
        from repro.ml import f1_score

        scores = cross_val_score(GaussianNB(), X, y, cv=3, scoring=f1_score)
        assert np.all((scores >= 0) & (scores <= 1))


class TestGridSearch:
    def test_explores_full_grid(self, labeled_data):
        X, y = labeled_data
        search = GridSearchCV(
            DecisionTreeClassifier(),
            param_grid={"max_depth": [1, 2], "min_samples_leaf": [1, 5]},
            cv=2,
        ).fit(X, y)
        assert len(search.results_) == 4

    def test_best_params_in_grid(self, labeled_data):
        X, y = labeled_data
        grid = {"max_depth": [1, 3]}
        search = GridSearchCV(DecisionTreeClassifier(), grid, cv=2).fit(X, y)
        assert search.best_params_["max_depth"] in grid["max_depth"]

    def test_best_estimator_fitted(self, labeled_data):
        X, y = labeled_data
        search = GridSearchCV(
            DecisionTreeClassifier(), {"max_depth": [2]}, cv=2
        ).fit(X, y)
        assert search.best_estimator_.is_fitted
        assert search.predict(X).shape == (len(X),)

    def test_deeper_tree_wins_when_needed(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-1, 1, size=(400, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(np.int64)  # needs depth 2
        search = GridSearchCV(
            DecisionTreeClassifier(), {"max_depth": [1, 3]}, cv=3
        ).fit(X, y)
        assert search.best_params_["max_depth"] == 3


class TestRandomizedSearch:
    def test_n_iter_candidates(self, labeled_data):
        X, y = labeled_data
        search = RandomizedSearchCV(
            KNeighborsClassifier(),
            param_distributions={"n_neighbors": [1, 3, 5, 7, 9]},
            n_iter=4,
            cv=2,
        ).fit(X, y)
        assert len(search.results_) == 4

    def test_deterministic_given_seed(self, labeled_data):
        X, y = labeled_data
        kwargs = dict(
            param_distributions={"n_neighbors": [1, 3, 5, 7, 9]},
            n_iter=3,
            cv=2,
            random_state=5,
        )
        a = RandomizedSearchCV(KNeighborsClassifier(), **kwargs).fit(X, y)
        b = RandomizedSearchCV(KNeighborsClassifier(), **kwargs).fit(X, y)
        assert [r["params"] for r in a.results_] == [r["params"] for r in b.results_]

    def test_search_usable_as_estimator(self, labeled_data):
        """A fitted search behaves like a model (used by workload 5)."""
        X, y = labeled_data
        search = RandomizedSearchCV(
            LogisticRegression(max_iter=20),
            param_distributions={"C": [0.1, 1.0]},
            n_iter=2,
            cv=2,
        ).fit(X, y)
        assert 0.0 <= search.score(X, y) <= 1.0


class TestOtherClassifiers:
    def test_gaussian_nb(self, labeled_data):
        X, y = labeled_data
        model = GaussianNB().fit(X, y)
        assert model.score(X, y) > 0.8
        assert np.allclose(model.predict_proba(X).sum(axis=1), 1.0)

    def test_knn_memorizes_with_k1(self, labeled_data):
        X, y = labeled_data
        model = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert model.score(X, y) == 1.0

    def test_knn_k_larger_than_data(self):
        X = np.asarray([[0.0], [1.0]])
        y = np.asarray([0, 1])
        model = KNeighborsClassifier(n_neighbors=10).fit(X, y)
        assert model.predict(X).shape == (2,)

    def test_knn_rejects_bad_k(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(n_neighbors=0)
