"""Tests for linear models, including warmstart semantics."""

import numpy as np
import pytest

from repro.ml import LinearRegression, LinearSVC, LogisticRegression, SGDClassifier
from repro.ml.base import clone


class TestLogisticRegression:
    def test_learns_separable_data(self, labeled_data):
        X, y = labeled_data
        model = LogisticRegression(max_iter=200, learning_rate=0.5).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_predict_proba_shape_and_range(self, labeled_data):
        X, y = labeled_data
        model = LogisticRegression(max_iter=50).fit(X, y)
        proba = model.predict_proba(X)
        assert proba.shape == (len(X), 2)
        assert np.all(proba >= 0) and np.all(proba <= 1)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            LogisticRegression().predict(np.zeros((1, 2)))

    def test_rejects_multiclass(self):
        X = np.zeros((3, 1))
        with pytest.raises(ValueError, match="classes"):
            LogisticRegression().fit(X, np.asarray([0, 1, 2]))

    def test_rejects_nan_input(self):
        X = np.asarray([[np.nan], [1.0]])
        with pytest.raises(ValueError, match="NaN"):
            LogisticRegression().fit(X, np.asarray([0, 1]))

    def test_preserves_class_labels(self):
        X = np.asarray([[-1.0], [-2.0], [1.0], [2.0]])
        y = np.asarray([5, 5, 9, 9])
        model = LogisticRegression(max_iter=100, learning_rate=1.0).fit(X, y)
        assert set(model.predict(X)) <= {5, 9}

    def test_n_iter_recorded(self, labeled_data):
        X, y = labeled_data
        model = LogisticRegression(max_iter=17, tol=0.0).fit(X, y)
        assert model.n_iter_ == 17


class TestWarmstart:
    def test_warmstart_flag(self, labeled_data):
        X, y = labeled_data
        base = LogisticRegression(max_iter=100, learning_rate=0.5).fit(X, y)
        warm = LogisticRegression(max_iter=100, learning_rate=0.5)
        warm.fit(X, y, warm_start_from=base)
        assert warm.warm_started_
        cold = LogisticRegression(max_iter=100).fit(X, y)
        assert not cold.warm_started_

    def test_warmstart_converges_faster(self, labeled_data):
        X, y = labeled_data
        base = LogisticRegression(max_iter=3000, learning_rate=0.5, tol=1e-5).fit(X, y)
        assert base.n_iter_ < 3000, "base model must converge for this test"
        warm = LogisticRegression(max_iter=3000, learning_rate=0.5, tol=1e-5)
        warm.fit(X, y, warm_start_from=base)
        assert warm.n_iter_ < base.n_iter_

    def test_warmstart_dimension_mismatch(self, labeled_data):
        X, y = labeled_data
        base = LogisticRegression(max_iter=10).fit(X[:, :2], y)
        with pytest.raises(ValueError, match="features"):
            LogisticRegression(max_iter=10).fit(X, y, warm_start_from=base)

    def test_warmstart_from_unfitted_is_cold(self, labeled_data):
        X, y = labeled_data
        model = LogisticRegression(max_iter=10)
        model.fit(X, y, warm_start_from=LogisticRegression())
        assert not model.warm_started_

    def test_supports_warm_start_attribute(self):
        assert LogisticRegression.supports_warm_start
        assert LinearSVC.supports_warm_start
        assert not LinearRegression.supports_warm_start


class TestLinearSVC:
    def test_learns_separable_data(self, labeled_data):
        X, y = labeled_data
        model = LinearSVC(max_iter=300, learning_rate=0.3).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_decision_function_sign_matches_prediction(self, labeled_data):
        X, y = labeled_data
        model = LinearSVC(max_iter=100).fit(X, y)
        margins = model.decision_function(X)
        predictions = model.predict(X)
        assert np.all((margins >= 0) == (predictions == model.classes_[1]))


class TestSGDClassifier:
    def test_log_loss_learns(self, labeled_data):
        X, y = labeled_data
        model = SGDClassifier(loss="log", max_iter=50, learning_rate=0.2).fit(X, y)
        assert model.score(X, y) > 0.85

    def test_hinge_loss_learns(self, labeled_data):
        X, y = labeled_data
        model = SGDClassifier(loss="hinge", max_iter=50, learning_rate=0.2).fit(X, y)
        assert model.score(X, y) > 0.85

    def test_unknown_loss(self):
        with pytest.raises(ValueError, match="loss"):
            SGDClassifier(loss="squared")

    def test_deterministic_given_seed(self, labeled_data):
        X, y = labeled_data
        a = SGDClassifier(max_iter=10, random_state=3).fit(X, y)
        b = SGDClassifier(max_iter=10, random_state=3).fit(X, y)
        assert np.allclose(a.coef_, b.coef_)

    def test_warmstart(self, labeled_data):
        X, y = labeled_data
        base = SGDClassifier(max_iter=30).fit(X, y)
        warm = SGDClassifier(max_iter=30)
        warm.fit(X, y, warm_start_from=base)
        assert warm.warm_started_


class TestLinearRegression:
    def test_recovers_exact_line(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        y = 3.0 * X.ravel() + 2.0
        model = LinearRegression().fit(X, y)
        assert model.coef_[0] == pytest.approx(3.0)
        assert model.intercept_ == pytest.approx(2.0)

    def test_r2_score_perfect(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        y = 3.0 * X.ravel() + 2.0
        model = LinearRegression().fit(X, y)
        assert model.score(X, y) == pytest.approx(1.0)


class TestParamsAndClone:
    def test_get_params(self):
        model = LogisticRegression(C=2.0, max_iter=7)
        params = model.get_params()
        assert params["C"] == 2.0
        assert params["max_iter"] == 7

    def test_set_params(self):
        model = LogisticRegression().set_params(C=5.0)
        assert model.C == 5.0

    def test_set_unknown_param(self):
        with pytest.raises(ValueError, match="no parameter"):
            LogisticRegression().set_params(bogus=1)

    def test_clone_resets_fit_state(self, labeled_data):
        X, y = labeled_data
        model = LogisticRegression(max_iter=10).fit(X, y)
        duplicate = clone(model)
        assert not duplicate.is_fitted
        assert duplicate.get_params() == model.get_params()
