"""Tests for scalers, encoders, imputation, and polynomial features."""

import numpy as np
import pytest

from repro.ml import (
    Binarizer,
    LabelEncoder,
    MinMaxScaler,
    OneHotEncoder,
    PolynomialFeatures,
    RobustScaler,
    SimpleImputer,
    StandardScaler,
)


class TestStandardScaler:
    def test_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        X = rng.normal(loc=5.0, scale=3.0, size=(100, 2))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_safe(self):
        X = np.ones((5, 1))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z, 0.0)

    def test_inverse_transform_roundtrip(self):
        X = np.asarray([[1.0, 2.0], [3.0, 4.0]])
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_fit_on_train_applies_to_test(self):
        train = np.asarray([[0.0], [10.0]])
        scaler = StandardScaler().fit(train)
        assert scaler.transform(np.asarray([[5.0]]))[0, 0] == pytest.approx(0.0)


class TestMinMaxScaler:
    def test_range(self):
        X = np.asarray([[1.0], [3.0], [5.0]])
        Z = MinMaxScaler().fit_transform(X)
        assert Z.min() == 0.0 and Z.max() == 1.0

    def test_custom_range(self):
        X = np.asarray([[0.0], [1.0]])
        Z = MinMaxScaler(feature_range=(-1.0, 1.0)).fit_transform(X)
        assert list(Z.ravel()) == [-1.0, 1.0]

    def test_constant_column_safe(self):
        Z = MinMaxScaler().fit_transform(np.ones((3, 1)))
        assert np.all(np.isfinite(Z))


class TestRobustScaler:
    def test_centers_on_median(self):
        X = np.asarray([[1.0], [2.0], [3.0], [100.0]])
        Z = RobustScaler().fit_transform(X)
        assert np.median(Z) == pytest.approx(0.0)

    def test_outlier_resistant(self):
        X = np.vstack([np.arange(100.0).reshape(-1, 1), [[10000.0]]])
        Z = RobustScaler().fit_transform(X)
        # bulk of the data stays in a small range despite the outlier
        assert np.abs(Z[:100]).max() < 2.0


class TestSimpleImputer:
    def test_mean(self):
        X = np.asarray([[1.0], [np.nan], [3.0]])
        Z = SimpleImputer(strategy="mean").fit_transform(X)
        assert Z[1, 0] == pytest.approx(2.0)

    def test_median(self):
        X = np.asarray([[1.0], [np.nan], [3.0], [100.0]])
        Z = SimpleImputer(strategy="median").fit_transform(X)
        assert Z[1, 0] == pytest.approx(3.0)

    def test_constant(self):
        X = np.asarray([[np.nan]])
        Z = SimpleImputer(strategy="constant", fill_value=-1.0).fit_transform(X)
        assert Z[0, 0] == -1.0

    def test_most_frequent(self):
        X = np.asarray([[1.0], [1.0], [2.0], [np.nan]])
        Z = SimpleImputer(strategy="most_frequent").fit_transform(X)
        assert Z[3, 0] == 1.0

    def test_all_nan_column_uses_fill_value(self):
        X = np.asarray([[np.nan], [np.nan]])
        Z = SimpleImputer(strategy="mean", fill_value=7.0).fit_transform(X)
        assert np.all(Z == 7.0)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            SimpleImputer(strategy="nope")

    def test_statistics_from_fit_applied_at_transform(self):
        imputer = SimpleImputer(strategy="mean").fit(np.asarray([[2.0], [4.0]]))
        Z = imputer.transform(np.asarray([[np.nan]]))
        assert Z[0, 0] == 3.0


class TestOneHotEncoder:
    def test_basic(self):
        X = np.asarray([["a"], ["b"], ["a"]], dtype=object)
        Z = OneHotEncoder().fit_transform(X)
        assert Z.shape == (3, 2)
        assert Z[0].tolist() == [1.0, 0.0]

    def test_unknown_ignored(self):
        enc = OneHotEncoder().fit(np.asarray([["a"]], dtype=object))
        Z = enc.transform(np.asarray([["zzz"]], dtype=object))
        assert Z.tolist() == [[0.0]]

    def test_unknown_error_mode(self):
        enc = OneHotEncoder(handle_unknown="error").fit(np.asarray([["a"]], dtype=object))
        with pytest.raises(ValueError, match="unknown categories"):
            enc.transform(np.asarray([["b"]], dtype=object))

    def test_feature_names(self):
        enc = OneHotEncoder().fit(np.asarray([["a"], ["b"]], dtype=object))
        assert enc.get_feature_names(["col"]) == ["col_a", "col_b"]

    def test_multicolumn(self):
        X = np.asarray([["a", "x"], ["b", "y"]], dtype=object)
        Z = OneHotEncoder().fit_transform(X)
        assert Z.shape == (2, 4)


class TestBinarizerPolyLabel:
    def test_binarizer(self):
        Z = Binarizer(threshold=1.0).fit_transform(np.asarray([[0.5], [1.5]]))
        assert Z.tolist() == [[0.0], [1.0]]

    def test_polynomial_degree2(self):
        X = np.asarray([[2.0, 3.0]])
        Z = PolynomialFeatures(degree=2).fit_transform(X)
        # x1, x2, x1^2, x1x2, x2^2
        assert Z.tolist() == [[2.0, 3.0, 4.0, 6.0, 9.0]]

    def test_polynomial_bias(self):
        Z = PolynomialFeatures(degree=1, include_bias=True).fit_transform(
            np.asarray([[5.0]])
        )
        assert Z.tolist() == [[1.0, 5.0]]

    def test_polynomial_rejects_wrong_width(self):
        poly = PolynomialFeatures(degree=2).fit(np.zeros((2, 2)))
        with pytest.raises(ValueError, match="features"):
            poly.transform(np.zeros((2, 3)))

    def test_label_encoder_roundtrip(self):
        encoder = LabelEncoder()
        codes = encoder.fit_transform(np.asarray(["b", "a", "b"]))
        assert codes.tolist() == [1, 0, 1]
        assert encoder.inverse_transform(codes).tolist() == ["b", "a", "b"]

    def test_label_encoder_unseen(self):
        encoder = LabelEncoder().fit(np.asarray(["a"]))
        with pytest.raises(ValueError, match="unseen"):
            encoder.transform(np.asarray(["b"]))
