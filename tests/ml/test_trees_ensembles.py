"""Tests for CART trees, random forest, and gradient boosting."""

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GradientBoostingClassifier,
    RandomForestClassifier,
)


@pytest.fixture
def xor_like():
    """Nonlinear (quadrant) data a linear model cannot fit but a tree can.

    Unlike pure XOR, the first greedy split already has positive gain, so
    CART's greedy search finds the structure reliably.
    """
    rng = np.random.default_rng(1)
    X = rng.uniform(-1, 1, size=(300, 2))
    y = ((X[:, 0] > 0) & (X[:, 1] > 0)).astype(np.int64)
    return X, y


class TestDecisionTreeClassifier:
    def test_fits_xor(self, xor_like):
        X, y = xor_like
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert tree.score(X, y) > 0.95

    def test_respects_max_depth(self, xor_like):
        X, y = xor_like
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert tree.depth_ <= 2

    def test_pure_node_becomes_leaf(self):
        X = np.asarray([[0.0], [1.0]])
        y = np.asarray([1, 1])
        tree = DecisionTreeClassifier(max_depth=5).fit(X, y)
        assert tree.depth_ == 0

    def test_predict_proba_rows_sum_to_one(self, xor_like):
        X, y = xor_like
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert np.allclose(tree.predict_proba(X).sum(axis=1), 1.0)

    def test_min_samples_leaf(self, xor_like):
        X, y = xor_like
        tree = DecisionTreeClassifier(max_depth=10, min_samples_leaf=50).fit(X, y)

        def leaves(node):
            if node.is_leaf:
                return [node.n_samples]
            return leaves(node.left) + leaves(node.right)

        assert min(leaves(tree.root_)) >= 50

    def test_rejects_multiclass(self):
        X = np.zeros((3, 1))
        with pytest.raises(ValueError, match="binary"):
            DecisionTreeClassifier().fit(X, np.asarray([0, 1, 2]))

    def test_preserves_class_labels(self, xor_like):
        X, y = xor_like
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y * 3 + 2)
        assert set(tree.predict(X)) <= {2, 5}

    def test_deterministic(self, xor_like):
        X, y = xor_like
        a = DecisionTreeClassifier(max_depth=4, random_state=1).fit(X, y)
        b = DecisionTreeClassifier(max_depth=4, random_state=1).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))

    def test_constant_feature_no_split(self):
        X = np.ones((10, 1))
        y = np.asarray([0, 1] * 5)
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert tree.n_leaves_ == 1


class TestDecisionTreeRegressor:
    def test_fits_step_function(self):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (X.ravel() > 0.5).astype(float) * 10.0
        tree = DecisionTreeRegressor(max_depth=1).fit(X, y)
        assert tree.score(X, y) > 0.99

    def test_constant_target(self):
        X = np.linspace(0, 1, 10).reshape(-1, 1)
        tree = DecisionTreeRegressor(max_depth=3).fit(X, np.ones(10))
        assert tree.n_leaves_ == 1
        assert np.allclose(tree.predict(X), 1.0)

    def test_max_features_sqrt(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(50, 9))
        y = X[:, 0]
        tree = DecisionTreeRegressor(max_depth=2, max_features="sqrt").fit(X, y)
        assert tree._k_features == 3


class TestRandomForest:
    def test_fits_xor(self, xor_like):
        X, y = xor_like
        forest = RandomForestClassifier(n_estimators=10, max_depth=4).fit(X, y)
        assert forest.score(X, y) > 0.9

    def test_number_of_trees(self, xor_like):
        X, y = xor_like
        forest = RandomForestClassifier(n_estimators=7, max_depth=2).fit(X, y)
        assert len(forest.estimators_) == 7

    def test_proba_is_average(self, xor_like):
        X, y = xor_like
        forest = RandomForestClassifier(n_estimators=5, max_depth=3).fit(X, y)
        manual = np.stack([t.predict_proba(X) for t in forest.estimators_]).mean(axis=0)
        assert np.allclose(forest.predict_proba(X), manual)

    def test_deterministic(self, xor_like):
        X, y = xor_like
        a = RandomForestClassifier(n_estimators=4, random_state=9).fit(X, y)
        b = RandomForestClassifier(n_estimators=4, random_state=9).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))


class TestGradientBoosting:
    def test_fits_xor(self, xor_like):
        X, y = xor_like
        gbt = GradientBoostingClassifier(n_estimators=25, max_depth=2).fit(X, y)
        assert gbt.score(X, y) > 0.9

    def test_more_rounds_reduce_training_error(self, xor_like):
        X, y = xor_like
        small = GradientBoostingClassifier(n_estimators=3, max_depth=2).fit(X, y)
        large = GradientBoostingClassifier(n_estimators=30, max_depth=2).fit(X, y)
        assert large.score(X, y) >= small.score(X, y)

    def test_warmstart_continues_ensemble(self, xor_like):
        X, y = xor_like
        base = GradientBoostingClassifier(n_estimators=10, max_depth=2).fit(X, y)
        warm = GradientBoostingClassifier(n_estimators=25, max_depth=2)
        warm.fit(X, y, warm_start_from=base)
        assert warm.warm_started_
        assert len(warm.estimators_) == 25
        assert warm.n_rounds_trained_ == 15
        # the first 10 trees are shared objects from the base model
        assert warm.estimators_[0] is base.estimators_[0]

    def test_warmstart_with_enough_trees_trains_nothing(self, xor_like):
        X, y = xor_like
        base = GradientBoostingClassifier(n_estimators=10, max_depth=2).fit(X, y)
        warm = GradientBoostingClassifier(n_estimators=5, max_depth=2)
        warm.fit(X, y, warm_start_from=base)
        assert warm.n_rounds_trained_ == 0

    def test_warmstart_feature_mismatch_falls_back_cold(self, xor_like):
        X, y = xor_like
        base = GradientBoostingClassifier(n_estimators=3, max_depth=2).fit(X[:, :1], y)
        warm = GradientBoostingClassifier(n_estimators=3, max_depth=2)
        warm.fit(X, y, warm_start_from=base)
        assert not warm.warm_started_

    def test_subsample(self, xor_like):
        X, y = xor_like
        gbt = GradientBoostingClassifier(n_estimators=10, subsample=0.5).fit(X, y)
        assert gbt.score(X, y) > 0.7

    def test_predict_proba_valid(self, xor_like):
        X, y = xor_like
        gbt = GradientBoostingClassifier(n_estimators=5).fit(X, y)
        proba = gbt.predict_proba(X)
        assert np.all((proba >= 0) & (proba <= 1))
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_rejects_multiclass(self):
        with pytest.raises(ValueError, match="binary"):
            GradientBoostingClassifier().fit(np.zeros((3, 1)), np.asarray([0, 1, 2]))
