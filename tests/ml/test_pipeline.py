"""Tests for Pipeline and FeatureUnion composition."""

import numpy as np
import pytest

from repro.ml import (
    PCA,
    FeatureUnion,
    GridSearchCV,
    LogisticRegression,
    Pipeline,
    SelectKBest,
    StandardScaler,
    make_pipeline,
)
from repro.ml.base import clone


@pytest.fixture
def pipeline():
    return Pipeline(
        [
            ("scale", StandardScaler()),
            ("select", SelectKBest(k=2)),
            ("model", LogisticRegression(max_iter=50, learning_rate=0.5)),
        ]
    )


class TestPipeline:
    def test_fit_predict(self, pipeline, labeled_data):
        X, y = labeled_data
        pipeline.fit(X, y)
        assert pipeline.score(X, y) > 0.8

    def test_predict_proba_passthrough(self, pipeline, labeled_data):
        X, y = labeled_data
        pipeline.fit(X, y)
        proba = pipeline.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_all_transformer_pipeline(self, labeled_data):
        X, y = labeled_data
        transformer = Pipeline([("scale", StandardScaler()), ("pca", PCA(n_components=2))])
        Z = transformer.fit(X, y).transform(X)
        assert Z.shape == (len(X), 2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Pipeline([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Pipeline([("a", StandardScaler()), ("a", StandardScaler())])

    def test_non_transformer_intermediate_rejected(self, labeled_data):
        X, y = labeled_data
        bad = Pipeline([("model", LogisticRegression()), ("scale", StandardScaler())])
        with pytest.raises(TypeError, match="transformer"):
            bad.fit(X, y)

    def test_named_step(self, pipeline):
        assert isinstance(pipeline.named_step("scale"), StandardScaler)
        with pytest.raises(KeyError):
            pipeline.named_step("nope")

    def test_nested_params(self, pipeline):
        params = pipeline.get_params()
        assert params["select__k"] == 2
        pipeline.set_params(select__k=3, model__C=0.5)
        assert pipeline.named_step("select").k == 3
        assert pipeline.named_step("model").C == 0.5

    def test_invalid_param_rejected(self, pipeline):
        with pytest.raises(ValueError):
            pipeline.set_params(nosuchstep__k=1)

    def test_clone_preserves_structure(self, pipeline):
        duplicate = clone(pipeline)
        assert [name for name, _ in duplicate.steps] == ["scale", "select", "model"]
        assert not duplicate.is_fitted

    def test_refit_does_not_leak_state(self, pipeline, labeled_data):
        """Fitting twice must not stack transformations."""
        X, y = labeled_data
        pipeline.fit(X, y)
        first = pipeline.predict(X)
        pipeline.fit(X, y)
        assert np.array_equal(pipeline.predict(X), first)

    def test_grid_search_over_pipeline(self, labeled_data):
        X, y = labeled_data
        search = GridSearchCV(
            Pipeline(
                [("scale", StandardScaler()), ("model", LogisticRegression(max_iter=30))]
            ),
            param_grid={"model__C": [0.1, 10.0]},
            cv=2,
        ).fit(X, y)
        assert search.best_params_["model__C"] in (0.1, 10.0)

    def test_make_pipeline_names(self):
        built = make_pipeline(StandardScaler(), LogisticRegression())
        assert [name for name, _ in built.steps] == [
            "standardscaler_0",
            "logisticregression_1",
        ]


class TestFeatureUnion:
    def test_concatenates_blocks(self, labeled_data):
        X, y = labeled_data
        union = FeatureUnion(
            [("pca", PCA(n_components=2)), ("select", SelectKBest(k=1))]
        )
        Z = union.fit(X, y).transform(X)
        assert Z.shape == (len(X), 3)

    def test_inside_pipeline(self, labeled_data):
        X, y = labeled_data
        model = Pipeline(
            [
                ("features", FeatureUnion([("pca", PCA(n_components=2)),
                                           ("scale", StandardScaler())])),
                ("model", LogisticRegression(max_iter=50, learning_rate=0.5)),
            ]
        ).fit(X, y)
        assert model.score(X, y) > 0.8

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FeatureUnion([])

    def test_nested_params(self):
        union = FeatureUnion([("pca", PCA(n_components=2))])
        union.set_params(pca__n_components=3)
        assert union.transformer_list[0][1].n_components == 3
