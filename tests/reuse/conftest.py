"""Builders for reuse-algorithm tests with injected costs.

Load costs are injected through a unit load-cost model (bandwidth 1 byte/s,
zero latency), so a vertex's EG ``size`` *is* its load cost in seconds —
letting tests state the paper's ⟨C_i, C_l⟩ labels directly.
"""

from __future__ import annotations

import pytest

from repro.eg.graph import ExperimentGraph
from repro.eg.storage import LoadCostModel
from repro.graph.dag import WorkloadDAG
from repro.graph.operations import DataOperation

UNIT_LOAD = LoadCostModel(bandwidth_bytes_per_s=1.0, latency_s=0.0)


class Op(DataOperation):
    def __init__(self, tag: str):
        super().__init__("op", params={"tag": tag})

    def run(self, underlying_data):
        return underlying_data


class PlanningScenario:
    """Builds a workload DAG + EG pair with hand-specified ⟨C_i, C_l⟩."""

    def __init__(self):
        self.workload = WorkloadDAG()
        self._spec: dict[str, tuple[float, float | None, bool]] = {}

    def source(self, name: str) -> str:
        return self.workload.add_source(name, payload=f"data:{name}")

    def vertex(
        self,
        tag: str,
        parents: list[str],
        compute: float,
        load: float | None = None,
        computed: bool = False,
        in_eg: bool = True,
    ) -> str:
        """Add a vertex; ``load=None`` means unmaterialized (C_l = inf)."""
        vertex_id = self.workload.add_operation(parents, Op(tag))
        if computed:
            self.workload.vertex(vertex_id).data = f"computed:{tag}"
            self.workload.vertex(vertex_id).computed = True
        if in_eg:
            self._spec[vertex_id] = (compute, load, load is not None)
        return vertex_id

    def build_eg(self) -> ExperimentGraph:
        eg = ExperimentGraph()
        eg.union_workload(self.workload)
        # wipe the state the union copied from the (partially computed)
        # workload; planners must rely only on what we inject below
        for record in eg.artifact_vertices():
            record.compute_time = 0.0
            record.size = 0
        for vertex_id, (compute, load, materialized) in self._spec.items():
            record = eg.vertex(vertex_id)
            record.compute_time = compute
            if materialized:
                record.size = int(load)
                record.materialized = True
                eg.store.put(vertex_id, f"stored:{vertex_id[:8]}")
        # vertices missing from the spec are removed: "not in EG"
        for vertex in list(self.workload.artifact_vertices()):
            if (
                not vertex.is_source
                and vertex.vertex_id not in self._spec
                and vertex.vertex_id in eg.graph
            ):
                eg.graph.remove_node(vertex.vertex_id)
        return eg


@pytest.fixture
def scenario():
    return PlanningScenario()


@pytest.fixture
def figure3(scenario):
    """The paper's Figure 3 example, reconstructed.

    * v1: ⟨10, 5⟩ materialized  -> load (T=5), joins R
    * u1: ⟨10, ∞⟩ unmaterialized -> compute (T=10)
    * w:  already computed in the workload (T=0)
    * v2: ⟨1, 17⟩ materialized  -> execution 10+5+1=16 < 17 -> compute
    * v3: ⟨5, 20⟩ materialized  -> execution 16+0+5=21 > 20 -> load, joins R
    * t:  not in EG (new work)  -> forward pass stops
    Backward pass keeps only v3 (v1 is above the loaded frontier).
    """
    s1 = scenario.source("s1")
    s2 = scenario.source("s2")
    s3 = scenario.source("s3")
    v1 = scenario.vertex("v1", [s1], compute=10.0, load=5.0)
    u1 = scenario.vertex("u1", [s2], compute=10.0, load=None)
    w = scenario.vertex("w", [s3], compute=10.0, load=None, computed=True)
    v2 = scenario.vertex("v2", [v1, u1], compute=1.0, load=17.0)
    v3 = scenario.vertex("v3", [v2, w], compute=5.0, load=20.0)
    t = scenario.vertex("t", [v3], compute=0.0, in_eg=False)
    scenario.workload.mark_terminal(t)
    eg = scenario.build_eg()
    return scenario.workload, eg, {"v1": v1, "u1": u1, "w": w, "v2": v2, "v3": v3, "t": t}
