"""Tests for warmstart candidate matching (paper Section 6.2)."""

import numpy as np
import pytest

from repro.client.api import Workspace
from repro.client.executor import Executor
from repro.dataframe import DataFrame
from repro.eg.graph import ExperimentGraph
from repro.eg.updater import Updater
from repro.graph.pruning import prune_workload
from repro.materialization.simple import MaterializeAll
from repro.ml import GradientBoostingClassifier, LogisticRegression
from repro.reuse.plan import ReusePlan
from repro.reuse.warmstart import find_warmstart_assignments


def training_frame() -> DataFrame:
    rng = np.random.default_rng(0)
    X = rng.normal(size=(80, 3))
    y = (X[:, 0] > 0).astype(np.int64)
    return DataFrame({"a": X[:, 0], "b": X[:, 1], "c": X[:, 2], "y": y})


def run_workload(eg: ExperimentGraph, estimator, scorer="train_auc"):
    ws = Workspace()
    train = ws.source("train", training_frame())
    X, y = train[["a", "b", "c"]], train["y"]
    model = X.fit(estimator, y=y, scorer=scorer)
    model.terminal()
    prune_workload(ws.dag)
    Executor().execute(ws.dag)
    Updater(eg, MaterializeAll()).update(ws.dag)
    return ws.dag, model.vertex_id


def plan_workload(estimator):
    ws = Workspace()
    train = ws.source("train", training_frame())
    X, y = train[["a", "b", "c"]], train["y"]
    model = X.fit(estimator, y=y, scorer="train_auc")
    model.terminal()
    prune_workload(ws.dag)
    return ws.dag, model.vertex_id


class TestWarmstartMatching:
    def test_same_type_different_hyperparams_matches(self):
        eg = ExperimentGraph()
        run_workload(eg, GradientBoostingClassifier(n_estimators=3, max_depth=2))
        workload, model_vid = plan_workload(
            GradientBoostingClassifier(n_estimators=6, max_depth=2)
        )
        assignments = find_warmstart_assignments(workload, eg, ReusePlan())
        assert [a.vertex_id for a in assignments] == [model_vid]

    def test_different_type_no_match(self):
        eg = ExperimentGraph()
        run_workload(eg, LogisticRegression(max_iter=5))
        workload, _ = plan_workload(
            GradientBoostingClassifier(n_estimators=6, max_depth=2)
        )
        assert find_warmstart_assignments(workload, eg, ReusePlan()) == []

    def test_exact_same_model_excluded(self):
        """Retraining the identical configuration is reuse, not warmstart."""
        eg = ExperimentGraph()
        run_workload(eg, GradientBoostingClassifier(n_estimators=3, max_depth=2))
        workload, _ = plan_workload(
            GradientBoostingClassifier(n_estimators=3, max_depth=2)
        )
        assert find_warmstart_assignments(workload, eg, ReusePlan()) == []

    def test_loaded_model_not_warmstarted(self):
        eg = ExperimentGraph()
        executed, model_vid = run_workload(
            eg, GradientBoostingClassifier(n_estimators=3, max_depth=2)
        )
        workload, planned_vid = plan_workload(
            GradientBoostingClassifier(n_estimators=6, max_depth=2)
        )
        plan = ReusePlan(loads={planned_vid})
        assert find_warmstart_assignments(workload, eg, plan) == []

    def test_best_quality_candidate_wins(self):
        eg = ExperimentGraph()
        run_workload(eg, GradientBoostingClassifier(n_estimators=1, max_depth=1))
        run_workload(eg, GradientBoostingClassifier(n_estimators=8, max_depth=3))
        qualities = {
            v.vertex_id: v.quality for v in eg.artifact_vertices() if v.is_model
        }
        best_vid = max(qualities, key=qualities.get)
        workload, _ = plan_workload(
            GradientBoostingClassifier(n_estimators=4, max_depth=2)
        )
        assignments = find_warmstart_assignments(workload, eg, ReusePlan())
        assert len(assignments) == 1
        assert assignments[0].source_model_vertex == best_vid

    def test_non_warmstartable_op_skipped(self):
        """KNN does not support warm starts; no assignment is produced."""
        from repro.ml import KNeighborsClassifier

        eg = ExperimentGraph()
        run_workload(eg, KNeighborsClassifier(n_neighbors=3), scorer="train_accuracy")
        workload, _ = plan_workload(KNeighborsClassifier(n_neighbors=5))
        assert find_warmstart_assignments(workload, eg, ReusePlan()) == []

    def test_end_to_end_warmstart_executes(self):
        """The executor actually continues boosting from the stored model."""
        eg = ExperimentGraph()
        run_workload(eg, GradientBoostingClassifier(n_estimators=3, max_depth=2))
        workload, model_vid = plan_workload(
            GradientBoostingClassifier(n_estimators=6, max_depth=2)
        )
        assignments = find_warmstart_assignments(workload, eg, ReusePlan())
        report = Executor().execute(workload, eg=eg, warmstarts=assignments)
        assert report.warmstarted_vertices == 1
        trained = workload.vertex(model_vid).data
        assert trained.warm_started_
        assert trained.n_rounds_trained_ == 3  # only the missing rounds
