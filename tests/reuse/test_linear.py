"""Tests for the linear-time reuse algorithm (paper Algorithm 2 + Figure 3)."""

import pytest

from repro.reuse.linear import LinearReuse

from .conftest import UNIT_LOAD


class TestFigure3:
    """The worked example of the paper, end to end."""

    def test_forward_pass_candidates(self, figure3):
        workload, eg, ids = figure3
        planner = LinearReuse(UNIT_LOAD)
        recreation, candidates = planner._forward_pass(workload, eg)
        assert candidates == {ids["v1"], ids["v3"]}

    def test_forward_pass_recreation_costs(self, figure3):
        workload, eg, ids = figure3
        planner = LinearReuse(UNIT_LOAD)
        recreation, _ = planner._forward_pass(workload, eg)
        assert recreation[ids["v1"]] == 5.0   # loaded
        assert recreation[ids["u1"]] == 10.0  # computed (unmaterialized)
        assert recreation[ids["w"]] == 0.0    # already in client memory
        assert recreation[ids["v2"]] == 16.0  # computing beats the 17s load
        assert recreation[ids["v3"]] == 20.0  # loading beats the 21s execution

    def test_backward_pass_prunes_v1(self, figure3):
        workload, eg, ids = figure3
        plan = LinearReuse(UNIT_LOAD).plan(workload, eg)
        assert plan.loads == {ids["v3"]}

    def test_execution_set_stops_at_loaded_frontier(self, figure3):
        workload, eg, ids = figure3
        plan = LinearReuse(UNIT_LOAD).plan(workload, eg)
        to_execute = plan.execution_set(workload)
        assert ids["t"] in to_execute
        assert ids["v2"] not in to_execute
        assert ids["v1"] not in to_execute


class TestLinearReuseProperties:
    def test_empty_eg_loads_nothing(self, scenario):
        s = scenario.source("s")
        v = scenario.vertex("v", [s], compute=5.0, in_eg=False)
        scenario.workload.mark_terminal(v)
        eg = scenario.build_eg()
        plan = LinearReuse(UNIT_LOAD).plan(scenario.workload, eg)
        assert plan.loads == set()
        assert plan.execution_set(scenario.workload) == {v}

    def test_unmaterialized_never_loaded(self, scenario):
        s = scenario.source("s")
        v = scenario.vertex("v", [s], compute=1000.0, load=None)
        scenario.workload.mark_terminal(v)
        plan = LinearReuse(UNIT_LOAD).plan(scenario.workload, scenario.build_eg())
        assert plan.loads == set()

    def test_cheap_compute_preferred_over_expensive_load(self, scenario):
        s = scenario.source("s")
        v = scenario.vertex("v", [s], compute=1.0, load=100.0)
        scenario.workload.mark_terminal(v)
        plan = LinearReuse(UNIT_LOAD).plan(scenario.workload, scenario.build_eg())
        assert plan.loads == set()

    def test_load_cuts_upstream_execution(self, scenario):
        s = scenario.source("s")
        a = scenario.vertex("a", [s], compute=50.0, load=None)
        b = scenario.vertex("b", [a], compute=50.0, load=1.0)
        scenario.workload.mark_terminal(b)
        plan = LinearReuse(UNIT_LOAD).plan(scenario.workload, scenario.build_eg())
        assert plan.loads == {b}
        assert plan.execution_set(scenario.workload) == set()

    def test_computed_vertices_cost_zero(self, scenario):
        s = scenario.source("s")
        a = scenario.vertex("a", [s], compute=50.0, load=10.0, computed=True)
        b = scenario.vertex("b", [a], compute=1.0, load=None)
        scenario.workload.mark_terminal(b)
        plan = LinearReuse(UNIT_LOAD).plan(scenario.workload, scenario.build_eg())
        # a is already in memory; loading it would cost 10 > 0
        assert plan.loads == set()

    def test_multi_terminal_keeps_both_frontiers(self, scenario):
        s = scenario.source("s")
        a = scenario.vertex("a", [s], compute=50.0, load=1.0)
        b = scenario.vertex("b", [s], compute=50.0, load=1.0)
        scenario.workload.mark_terminal(a)
        scenario.workload.mark_terminal(b)
        plan = LinearReuse(UNIT_LOAD).plan(scenario.workload, scenario.build_eg())
        assert plan.loads == {a, b}

    def test_diamond_shared_parent(self, scenario):
        """A loaded vertex shields its ancestors on every outgoing path."""
        s = scenario.source("s")
        hub = scenario.vertex("hub", [s], compute=100.0, load=2.0)
        left = scenario.vertex("left", [hub], compute=1.0, load=None)
        right = scenario.vertex("right", [hub], compute=1.0, load=None)
        sink = scenario.vertex("sink", [left, right], compute=1.0, load=None)
        scenario.workload.mark_terminal(sink)
        plan = LinearReuse(UNIT_LOAD).plan(scenario.workload, scenario.build_eg())
        assert plan.loads == {hub}
        assert plan.execution_set(scenario.workload) == {left, right, sink}

    def test_plan_cost_counts_shared_ancestors_once(self, scenario):
        s = scenario.source("s")
        hub = scenario.vertex("hub", [s], compute=10.0, load=None)
        left = scenario.vertex("left", [hub], compute=1.0, load=None)
        right = scenario.vertex("right", [hub], compute=1.0, load=None)
        sink = scenario.vertex("sink", [left, right], compute=1.0, load=None)
        scenario.workload.mark_terminal(sink)
        eg = scenario.build_eg()
        plan = LinearReuse(UNIT_LOAD).plan(scenario.workload, eg)
        assert plan.estimated_cost == pytest.approx(13.0)
