"""Tests for the Helix PSP/min-cut reuse, max-flow, and trivial baselines."""

import pytest

from repro.reuse.baselines import AllMaterializedReuse, NoReuse
from repro.reuse.helix import HelixReuse
from repro.reuse.linear import LinearReuse
from repro.reuse.maxflow import FlowNetwork
from repro.workloads.synthetic_dag import (
    SyntheticDAGConfig,
    build_matching_eg,
    generate_synthetic_workload,
)

from .conftest import UNIT_LOAD


class TestFlowNetwork:
    def test_simple_path(self):
        network = FlowNetwork()
        network.add_edge("s", "a", 3.0)
        network.add_edge("a", "t", 2.0)
        assert network.max_flow("s", "t") == 2.0

    def test_parallel_paths(self):
        network = FlowNetwork()
        network.add_edge("s", "a", 1.0)
        network.add_edge("s", "b", 1.0)
        network.add_edge("a", "t", 1.0)
        network.add_edge("b", "t", 1.0)
        assert network.max_flow("s", "t") == 2.0

    def test_classic_crossing_network(self):
        network = FlowNetwork()
        edges = [
            ("s", "a", 10), ("s", "b", 10), ("a", "b", 2),
            ("a", "t", 4), ("b", "t", 9), ("a", "c", 8), ("c", "t", 10),
        ]
        for u, v, c in edges:
            network.add_edge(u, v, float(c))
        assert network.max_flow("s", "t") == 19.0

    def test_min_cut_side(self):
        network = FlowNetwork()
        network.add_edge("s", "a", 5.0)
        network.add_edge("a", "t", 1.0)
        network.max_flow("s", "t")
        assert network.min_cut_source_side("s") == {"s", "a"}

    def test_missing_nodes(self):
        assert FlowNetwork().max_flow("s", "t") == 0.0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlowNetwork().add_edge("a", "b", -1.0)

    def test_parallel_edge_capacities_add(self):
        network = FlowNetwork()
        network.add_edge("s", "t", 1.0)
        network.add_edge("s", "t", 2.0)
        assert network.max_flow("s", "t") == 3.0


class TestHelixMatchesLinear:
    def test_figure3_same_plan(self, figure3):
        workload, eg, ids = figure3
        plan_hl = HelixReuse(UNIT_LOAD).plan(workload, eg)
        plan_ln = LinearReuse(UNIT_LOAD).plan(workload, eg)
        assert plan_hl.loads == plan_ln.loads == {ids["v3"]}

    @pytest.mark.parametrize("seed", range(8))
    def test_synthetic_workloads_equal_cost(self, seed):
        """Both planners are optimal: plan costs must match (paper 7.4)."""
        config = SyntheticDAGConfig(min_nodes=40, max_nodes=120)
        workload = generate_synthetic_workload(seed, config)
        eg = build_matching_eg(workload, seed, config)
        plan_ln = LinearReuse().plan(workload, eg)
        plan_hl = HelixReuse().plan(workload, eg)
        assert plan_hl.estimated_cost == pytest.approx(
            plan_ln.estimated_cost, rel=1e-9
        )

    def test_diamond_divergence_documented(self, scenario):
        """Regression for the known LN/HL divergence (see linear.py note).

        Two materialized siblings (load 10 each) share an unmaterialized
        10s parent.  LN double-counts the parent in each sibling's
        execution cost and loads both (total 21); the min-cut computes the
        parent once (total 13).
        """
        s = scenario.source("s")
        x = scenario.vertex("x", [s], compute=10.0, load=None)
        a = scenario.vertex("a", [x], compute=1.0, load=10.0)
        b = scenario.vertex("b", [x], compute=1.0, load=10.0)
        sink = scenario.vertex("sink", [a, b], compute=1.0, load=None)
        scenario.workload.mark_terminal(sink)
        eg = scenario.build_eg()
        plan_ln = LinearReuse(UNIT_LOAD).plan(scenario.workload, eg)
        plan_hl = HelixReuse(UNIT_LOAD).plan(scenario.workload, eg)
        assert plan_ln.loads == {a, b}
        assert plan_ln.estimated_cost == pytest.approx(21.0)
        assert plan_hl.loads == set()
        assert plan_hl.estimated_cost == pytest.approx(13.0)

    def test_helix_loads_only_materialized(self, scenario):
        s = scenario.source("s")
        v = scenario.vertex("v", [s], compute=1000.0, load=None)
        scenario.workload.mark_terminal(v)
        plan = HelixReuse(UNIT_LOAD).plan(scenario.workload, scenario.build_eg())
        assert plan.loads == set()


class TestBaselines:
    def test_all_m_loads_everything_materialized(self, figure3):
        workload, eg, ids = figure3
        plan = AllMaterializedReuse(UNIT_LOAD).plan(workload, eg)
        # v3 is loaded; v2/v1 sit above the loaded frontier and are skipped
        assert plan.loads == {ids["v3"]}

    def test_all_m_loads_even_when_loading_is_worse(self, scenario):
        s = scenario.source("s")
        v = scenario.vertex("v", [s], compute=1.0, load=1000.0)
        scenario.workload.mark_terminal(v)
        plan = AllMaterializedReuse(UNIT_LOAD).plan(scenario.workload, scenario.build_eg())
        assert plan.loads == {v}  # LN would have computed it

    def test_all_c_never_loads(self, figure3):
        workload, eg, _ids = figure3
        plan = NoReuse().plan(workload, eg)
        assert plan.loads == set()

    def test_all_c_execution_set_is_everything_needed(self, figure3):
        workload, eg, ids = figure3
        plan = NoReuse().plan(workload, eg)
        to_execute = plan.execution_set(workload)
        assert ids["v1"] in to_execute
        assert ids["w"] not in to_execute  # already computed in the client
