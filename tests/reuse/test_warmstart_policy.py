"""Tests for the warmstart candidate policy and the backward-pass knob."""

import numpy as np
import pytest

from repro.client.api import Workspace
from repro.client.executor import Executor
from repro.dataframe import DataFrame
from repro.eg.graph import ExperimentGraph
from repro.eg.updater import Updater
from repro.graph.pruning import prune_workload
from repro.materialization.simple import MaterializeAll
from repro.ml import GradientBoostingClassifier
from repro.reuse.linear import LinearReuse
from repro.reuse.plan import ReusePlan
from repro.reuse.warmstart import find_warmstart_assignments


def training_frame():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(120, 3))
    # noisy target: a 1-stump model cannot reach a perfect train AUC
    y = (X[:, 0] + 0.8 * X[:, 1] + rng.normal(scale=0.7, size=120) > 0).astype(
        np.int64
    )
    return DataFrame({"a": X[:, 0], "b": X[:, 1], "c": X[:, 2], "y": y})


def run_gbt(eg: ExperimentGraph, n_estimators: int, max_depth: int):
    ws = Workspace()
    train = ws.source("train", training_frame())
    X, y = train[["a", "b", "c"]], train["y"]
    model = X.fit(
        GradientBoostingClassifier(n_estimators=n_estimators, max_depth=max_depth),
        y=y,
        scorer="train_auc",
    )
    model.terminal()
    prune_workload(ws.dag)
    Executor().execute(ws.dag)
    Updater(eg, MaterializeAll()).update(ws.dag)
    return model.vertex_id


def plan_gbt(n_estimators: int):
    ws = Workspace()
    train = ws.source("train", training_frame())
    X, y = train[["a", "b", "c"]], train["y"]
    model = X.fit(
        GradientBoostingClassifier(n_estimators=n_estimators, max_depth=2),
        y=y,
        scorer="train_auc",
    )
    model.terminal()
    prune_workload(ws.dag)
    return ws.dag


class TestWarmstartPolicy:
    def test_best_quality_vs_most_recent_differ(self):
        eg = ExperimentGraph()
        strong = run_gbt(eg, n_estimators=10, max_depth=3)  # better, older
        weak = run_gbt(eg, n_estimators=1, max_depth=1)  # worse, newer
        assert eg.vertex(strong).quality > eg.vertex(weak).quality
        assert eg.vertex(weak).last_seen > eg.vertex(strong).last_seen

        workload = plan_gbt(n_estimators=5)
        by_quality = find_warmstart_assignments(
            workload, eg, ReusePlan(), policy="best_quality"
        )
        by_recency = find_warmstart_assignments(
            workload, eg, ReusePlan(), policy="most_recent"
        )
        assert by_quality[0].source_model_vertex == strong
        assert by_recency[0].source_model_vertex == weak

    def test_unknown_policy_rejected(self):
        eg = ExperimentGraph()
        run_gbt(eg, n_estimators=2, max_depth=1)
        workload = plan_gbt(n_estimators=5)
        with pytest.raises(ValueError, match="policy"):
            find_warmstart_assignments(workload, eg, ReusePlan(), policy="random")

    def test_last_seen_tracks_workload_counter(self):
        eg = ExperimentGraph()
        first = run_gbt(eg, n_estimators=2, max_depth=1)
        assert eg.vertex(first).last_seen == 1
        run_gbt(eg, n_estimators=2, max_depth=1)  # same workload again
        assert eg.vertex(first).last_seen == 2


class TestBackwardPassKnob:
    def test_disabled_backward_pass_keeps_all_candidates(self, tiny_home_credit):
        from repro.workloads.kaggle import KAGGLE_WORKLOADS
        from repro.client.parser import parse_workload

        eg = ExperimentGraph()
        workspace = parse_workload(KAGGLE_WORKLOADS[2], tiny_home_credit)
        prune_workload(workspace.dag)
        Executor().execute(workspace.dag)
        Updater(eg, MaterializeAll()).update(workspace.dag)

        repeat = parse_workload(KAGGLE_WORKLOADS[2], tiny_home_credit)
        prune_workload(repeat.dag)
        with_bp = LinearReuse(backward_pass=True).plan(repeat.dag, eg)
        without_bp = LinearReuse(backward_pass=False).plan(repeat.dag, eg)
        assert with_bp.loads <= without_bp.loads
        assert with_bp.plan_cost(repeat.dag, eg, LinearReuse().load_cost_model) <= (
            without_bp.plan_cost(repeat.dag, eg, LinearReuse().load_cost_model)
        )
