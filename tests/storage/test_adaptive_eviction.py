"""Adaptive hot-tier eviction: scorer wiring, hooks-off parity, cleanup."""

import numpy as np

from repro.dataframe import Column, DataFrame
from repro.learn import FeedbackCollector, ReuseValueScorer
from repro.obs.metrics import MetricsRegistry
from repro.storage import TieredArtifactStore


def _frame(column_id: str, rows: int = 256) -> DataFrame:
    """One float64 column = ``rows * 8`` bytes, unique so nothing dedups."""
    return DataFrame([Column("x", np.zeros(rows), column_id)])


_SLOT = 256 * 8  # bytes per artifact in the traces below


def _skewed_trace(store: TieredArtifactStore, heads: int = 6, rounds: int = 40) -> int:
    """Zipf-head traffic polluted by one-shot scans; returns cold hits.

    A pure-LRU store lets every burst of never-again-read scan artifacts
    push the popular head entries out of the hot tier; a reuse-aware
    scorer keeps the heads resident and demotes the scans instead.  The
    trace is fully deterministic (seeded generator, no wall-clock input),
    so the cold-hit counts are machine-independent.
    """
    for h in range(heads):
        store.put(f"head{h}", _frame(f"head-col{h}"))
    rng = np.random.default_rng(11)
    scan_id = 0
    for _ in range(rounds):
        for _ in range(4):
            idx = min(int(rng.zipf(1.6)) - 1, heads - 1)
            store.get(f"head{idx}")
        for _ in range(4):
            vertex = f"scan{scan_id}"
            scan_id += 1
            store.put(vertex, _frame(f"scan-col{vertex}"))
            store.get(vertex)
    return store.stats.cold_hits


def _adaptive_store(tmp_path) -> TieredArtifactStore:
    store = TieredArtifactStore(hot_budget_bytes=16 * _SLOT, directory=tmp_path)
    collector = FeedbackCollector(registry=MetricsRegistry())
    store.eviction_scorer = ReuseValueScorer(collector)
    store.load_observer = collector.observe_cold_load
    return store


class TestSkewedTraffic:
    def test_reuse_scorer_beats_lru_on_scan_pollution(self, tmp_path):
        static = TieredArtifactStore(
            hot_budget_bytes=16 * _SLOT, directory=tmp_path / "static"
        )
        static_cold = _skewed_trace(static)

        adaptive = _adaptive_store(tmp_path / "adaptive")
        adaptive_cold = _skewed_trace(adaptive)

        assert static_cold > 0, "trace never pressured the hot budget"
        assert adaptive_cold < static_cold

    def test_trace_is_deterministic(self, tmp_path):
        runs = [
            _skewed_trace(_adaptive_store(tmp_path / f"run{i}")) for i in range(2)
        ]
        assert runs[0] == runs[1]

    def test_contents_identical_under_either_policy(self, tmp_path):
        # eviction only moves artifacts between tiers — every vertex must
        # stay readable and byte-identical regardless of policy
        static = TieredArtifactStore(
            hot_budget_bytes=16 * _SLOT, directory=tmp_path / "static"
        )
        adaptive = _adaptive_store(tmp_path / "adaptive")
        _skewed_trace(static)
        _skewed_trace(adaptive)
        assert static.vertex_ids == adaptive.vertex_ids
        for vertex in static.vertex_ids:
            assert static.get(vertex) == adaptive.get(vertex)


class TestHooksOff:
    def test_defaults_leave_adaptive_machinery_dormant(self, tmp_path):
        store = TieredArtifactStore(directory=tmp_path)
        assert store.eviction_scorer is None
        assert store.load_observer is None
        store.put("v", _frame("c"))
        store.get("v")
        # no scorer => no per-vertex access tracking is accumulated
        assert store._access_counts == {}

    def test_hooks_off_matches_legacy_lru_exactly(self, tmp_path):
        baseline = TieredArtifactStore(
            hot_budget_bytes=16 * _SLOT, directory=tmp_path / "a"
        )
        again = TieredArtifactStore(
            hot_budget_bytes=16 * _SLOT, directory=tmp_path / "b"
        )
        assert _skewed_trace(baseline) == _skewed_trace(again)


class TestObserverHook:
    def test_cold_reads_report_exact_profile(self, tmp_path):
        store = TieredArtifactStore(directory=tmp_path)
        seen = []
        store.load_observer = lambda **kw: seen.append(kw)
        store.put("v", _frame("c"))
        store.get("v")  # hot hit: not reported
        store.demote("v")
        store.get("v")  # cold read: reported with the exact profile
        assert len(seen) == 1
        report = seen[0]
        assert report["vertex_id"] == "v"
        assert report["size_bytes"] == _SLOT
        assert report["n_columns"] == 1
        assert report["object_columns"] == 0
        assert report["seconds"] >= 0.0

    def test_object_payloads_profile_as_single_column(self, tmp_path):
        store = TieredArtifactStore(directory=tmp_path)
        seen = []
        store.load_observer = lambda **kw: seen.append(kw)
        store.put("m", np.zeros(16))
        store.demote("m")
        store.get("m")
        assert seen[0]["n_columns"] == 1
        assert seen[0]["object_columns"] == 0


class TestTrackingCleanup:
    def _tracked_store(self, tmp_path) -> TieredArtifactStore:
        store = TieredArtifactStore(directory=tmp_path)
        collector = FeedbackCollector(registry=MetricsRegistry())
        store.eviction_scorer = ReuseValueScorer(collector)
        return store

    def test_demote_drops_access_tracking(self, tmp_path):
        store = self._tracked_store(tmp_path)
        store.put("v", _frame("c"))
        store.get("v")
        assert "v" in store._access_counts
        store.demote("v")
        assert "v" not in store._access_counts
        assert "v" not in store._last_access

    def test_remove_drops_access_tracking(self, tmp_path):
        store = self._tracked_store(tmp_path)
        store.put("v", _frame("c"))
        store.remove("v")
        assert "v" not in store._access_counts
        assert "v" not in store._last_access
