"""Tests for tier-aware load-cost pricing."""

from repro.eg.storage import LoadCostModel, StorageTier
from repro.storage import TieredLoadCostModel


class TestTieredLoadCostModel:
    def test_cold_priced_at_disk_bandwidth(self):
        model = TieredLoadCostModel.default()
        size = 10_000_000
        hot = model.cost_for_tier(size, StorageTier.HOT)
        cold = model.cost_for_tier(size, StorageTier.COLD)
        assert hot == LoadCostModel.in_memory().cost(size)
        assert cold == LoadCostModel.on_disk().cost(size)
        assert cold > hot

    def test_plain_cost_is_the_hot_cost(self):
        model = TieredLoadCostModel.default()
        assert model.cost(1000) == model.cost_for_tier(1000, StorageTier.HOT)

    def test_custom_cold_model(self):
        model = TieredLoadCostModel(
            bandwidth_bytes_per_s=100.0,
            latency_s=0.0,
            cold=LoadCostModel(bandwidth_bytes_per_s=10.0, latency_s=1.0),
        )
        assert model.cost_for_tier(100, StorageTier.HOT) == 1.0
        assert model.cost_for_tier(100, StorageTier.COLD) == 11.0


class TestBaseModelTierHook:
    def test_base_model_ignores_tier(self):
        model = LoadCostModel.in_memory()
        size = 1_000_000
        assert model.cost_for_tier(size, StorageTier.COLD) == model.cost(size)
        assert model.cost_for_tier(size, StorageTier.HOT) == model.cost(size)
