"""Tests for the disk-backed cold tier's on-disk layout."""

import numpy as np
import pytest

from repro.dataframe import Column
from repro.storage.disk import DiskColdTier


class TestColumns:
    def test_roundtrip(self, tmp_path):
        cold = DiskColdTier(tmp_path)
        column = Column("x", np.arange(10.0), "cid1")
        assert cold.write_column(column) == 80
        restored = cold.read_column("cid1", "renamed")
        assert restored.name == "renamed"
        assert restored.column_id == "cid1"
        assert np.array_equal(restored.values, column.values)

    def test_object_dtype_roundtrip(self, tmp_path):
        cold = DiskColdTier(tmp_path)
        values = np.asarray(["a", "bb", None], dtype=object)
        cold.write_column(Column("s", values, "cid_s"))
        assert list(cold.read_column("cid_s", "s").values) == ["a", "bb", None]

    def test_write_is_idempotent(self, tmp_path):
        cold = DiskColdTier(tmp_path)
        column = Column("x", np.arange(10.0), "cid1")
        assert cold.write_column(column) == 80
        assert cold.write_column(column) == 0  # already durable
        assert cold.bytes_stored == 80

    def test_delete_removes_file(self, tmp_path):
        cold = DiskColdTier(tmp_path)
        cold.write_column(Column("x", np.arange(10.0), "cid1"))
        assert cold.delete_column("cid1") == 80
        assert not cold.has_column("cid1")
        assert not list((tmp_path / "columns").glob("*.npy"))

    def test_missing_read_raises(self, tmp_path):
        with pytest.raises(KeyError, match="cold tier"):
            DiskColdTier(tmp_path).read_column("nope", "x")


class TestObjects:
    def test_roundtrip(self, tmp_path):
        cold = DiskColdTier(tmp_path)
        payload = {"weights": [1.0, 2.0]}
        assert cold.write_object("v1", payload, 100) == 100
        assert cold.read_object("v1") == payload

    def test_long_vertex_id_is_a_safe_filename(self, tmp_path):
        cold = DiskColdTier(tmp_path)
        vertex_id = "x" * 500  # far beyond any filesystem's name limit
        cold.write_object(vertex_id, 42, 8)
        assert cold.read_object(vertex_id) == 42

    def test_delete(self, tmp_path):
        cold = DiskColdTier(tmp_path)
        cold.write_object("v1", 42, 8)
        assert cold.delete_object("v1") == 8
        assert not cold.has_object("v1")
        assert not list((tmp_path / "objects").glob("*.pkl"))


class TestManifest:
    def test_reattach(self, tmp_path):
        cold = DiskColdTier(tmp_path)
        cold.write_column(Column("x", np.arange(10.0), "cid1"))
        cold.write_object("v1", 42, 8)
        cold.write_manifest({"vertices": {}})

        fresh = DiskColdTier(tmp_path)
        assert not fresh.has_column("cid1")  # not attached yet
        fresh.read_manifest()
        assert fresh.has_column("cid1")
        assert fresh.has_object("v1")
        assert fresh.bytes_stored == 88
        assert np.array_equal(fresh.read_column("cid1", "x").values, np.arange(10.0))

    def test_version_check(self, tmp_path):
        cold = DiskColdTier(tmp_path)
        cold.write_manifest({"vertices": {}})
        text = cold.manifest_path.read_text().replace(
            '"manifest_version": 1', '"manifest_version": 99'
        )
        cold.manifest_path.write_text(text)
        with pytest.raises(ValueError, match="manifest version"):
            DiskColdTier(tmp_path).read_manifest()
