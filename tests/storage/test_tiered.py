"""Tests for the tiered artifact store: contract, movement, persistence."""

import numpy as np
import pytest

from repro.dataframe import Column, DataFrame
from repro.eg.storage import ArtifactDivergenceError, DedupArtifactStore, StorageTier
from repro.storage import TieredArtifactStore


def frame_with_ids(spec: dict[str, tuple[str, int]]) -> DataFrame:
    """Build a frame from {name: (column_id, n_values)}."""
    columns = [
        Column(name, np.zeros(n), column_id) for name, (column_id, n) in spec.items()
    ]
    return DataFrame(columns)


class TestContract:
    """The tiered store honours the ArtifactStore contract byte-for-byte
    like DedupArtifactStore — tier placement never changes the accounting."""

    def test_put_get_roundtrip(self, tmp_path):
        store = TieredArtifactStore(directory=tmp_path)
        frame = frame_with_ids({"x": ("c1", 10), "y": ("c2", 10)})
        store.put("v", frame)
        assert store.get("v") == frame

    def test_shared_column_stored_once(self, tmp_path):
        store = TieredArtifactStore(directory=tmp_path)
        a = frame_with_ids({"x": ("shared", 100), "y": ("only_a", 100)})
        b = frame_with_ids({"x": ("shared", 100), "z": ("only_b", 100)})
        assert store.put("a", a) == 1600
        assert store.put("b", b) == 800  # 'shared' not charged again
        assert store.total_bytes == 2400
        assert store.logical_bytes == 3200

    def test_rename_reuses_column(self, tmp_path):
        store = TieredArtifactStore(directory=tmp_path)
        store.put("a", frame_with_ids({"x": ("c1", 100)}))
        assert store.put("b", frame_with_ids({"renamed": ("c1", 100)})) == 0
        assert store.get("b").columns == ["renamed"]

    def test_refcounted_removal(self, tmp_path):
        store = TieredArtifactStore(directory=tmp_path)
        store.put("a", frame_with_ids({"x": ("shared", 100)}))
        store.put("b", frame_with_ids({"x": ("shared", 100)}))
        assert store.remove("a") == 0  # still referenced by b
        assert store.remove("b") == 800
        assert store.total_bytes == 0
        assert store.hot_bytes == 0

    def test_non_frame_payloads(self, tmp_path):
        store = TieredArtifactStore(directory=tmp_path)
        assert store.put("m", np.zeros(10)) == 80
        assert np.array_equal(store.get("m"), np.zeros(10))
        assert store.remove("m") == 80

    def test_missing_get_raises(self, tmp_path):
        with pytest.raises(KeyError, match="not materialized"):
            TieredArtifactStore(directory=tmp_path).get("nope")

    def test_contains_and_ids(self, tmp_path):
        store = TieredArtifactStore(directory=tmp_path)
        store.put("v1", 1)
        assert "v1" in store
        assert store.vertex_ids == {"v1"}

    def test_incremental_size_counts_shared_once(self, tmp_path):
        store = TieredArtifactStore(directory=tmp_path)
        store.put("a", frame_with_ids({"x": ("c1", 100)}))
        planned = [
            ("b", frame_with_ids({"x": ("c1", 100), "y": ("c2", 100)})),
            ("c", frame_with_ids({"y": ("c2", 100), "z": ("c3", 100)})),
        ]
        assert store.incremental_size(planned) == 1600  # c2 once, c1 free
        assert store.total_bytes == 800  # dry run did not commit

    def test_accounting_matches_dedup_store(self, tmp_path):
        tiered = TieredArtifactStore(hot_budget_bytes=900, directory=tmp_path)
        dedup = DedupArtifactStore()
        frames = [
            ("a", frame_with_ids({"x": ("shared", 100), "y": ("a1", 100)})),
            ("b", frame_with_ids({"x": ("shared", 100), "z": ("b1", 100)})),
            ("m", np.zeros(30)),
        ]
        for vertex_id, payload in frames:
            assert tiered.put(vertex_id, payload) == dedup.put(vertex_id, payload)
        assert tiered.total_bytes == dedup.total_bytes
        assert tiered.logical_bytes == dedup.logical_bytes


class TestDivergence:
    def test_identical_reput_is_a_noop(self, tmp_path):
        store = TieredArtifactStore(directory=tmp_path)
        store.put("v", frame_with_ids({"x": ("c1", 10)}))
        assert store.put("v", frame_with_ids({"x": ("c1", 10)})) == 0

    def test_divergent_frame_raises(self, tmp_path):
        store = TieredArtifactStore(directory=tmp_path)
        store.put("v", frame_with_ids({"x": ("c1", 10)}))
        with pytest.raises(ArtifactDivergenceError, match="different columns"):
            store.put("v", frame_with_ids({"x": ("c2", 10), "y": ("c3", 10)}))

    def test_divergent_kind_raises(self, tmp_path):
        store = TieredArtifactStore(directory=tmp_path)
        store.put("v", frame_with_ids({"x": ("c1", 10)}))
        with pytest.raises(ArtifactDivergenceError):
            store.put("v", np.zeros(10))


class TestEvictionAndPromotion:
    def test_lru_demotion_under_budget(self, tmp_path):
        # budget fits one of the two 800-byte frames; the older one demotes
        store = TieredArtifactStore(hot_budget_bytes=1000, directory=tmp_path)
        store.put("old", frame_with_ids({"x": ("c_old", 100)}))
        store.put("new", frame_with_ids({"x": ("c_new", 100)}))
        assert store.tier_of("old") is StorageTier.COLD
        assert store.tier_of("new") is StorageTier.HOT
        assert store.hot_bytes == 800
        assert store.stats.demotions == 1
        assert store.stats.bytes_demoted == 800

    def test_get_refreshes_lru_order(self, tmp_path):
        store = TieredArtifactStore(hot_budget_bytes=1700, directory=tmp_path)
        store.put("a", frame_with_ids({"x": ("ca", 100)}))
        store.put("b", frame_with_ids({"x": ("cb", 100)}))
        store.get("a")  # touch a so b is now least recently used
        store.put("c", frame_with_ids({"x": ("cc", 100)}))
        assert store.tier_of("b") is StorageTier.COLD
        assert store.tier_of("a") is StorageTier.HOT

    def test_cold_get_is_byte_identical_and_promotes(self, tmp_path):
        store = TieredArtifactStore(hot_budget_bytes=1000, directory=tmp_path)
        values = np.arange(100.0)
        original = DataFrame([Column("x", values, "c_old")])
        store.put("old", original)
        store.put("new", frame_with_ids({"x": ("c_new", 100)}))
        assert store.tier_of("old") is StorageTier.COLD

        restored = store.get("old")
        assert np.array_equal(restored.column("x").values, values)
        assert restored == original
        assert store.stats.cold_hits == 1
        assert store.stats.promotions == 1
        assert store.stats.load_seconds > 0
        # promotion made 'old' hot and pushed 'new' out
        assert store.tier_of("old") is StorageTier.HOT
        assert store.tier_of("new") is StorageTier.COLD

    def test_oversized_artifact_demotes_immediately(self, tmp_path):
        store = TieredArtifactStore(hot_budget_bytes=100, directory=tmp_path)
        store.put("big", frame_with_ids({"x": ("c1", 1000)}))
        assert store.tier_of("big") is StorageTier.COLD
        assert store.hot_bytes == 0
        # every access is a cold hit: the artifact cannot stay resident
        store.get("big")
        assert store.stats.cold_hits == 1
        assert store.tier_of("big") is StorageTier.COLD

    def test_shared_column_durable_on_disk_once(self, tmp_path):
        store = TieredArtifactStore(directory=tmp_path)
        store.put("a", frame_with_ids({"x": ("shared", 100), "y": ("a1", 100)}))
        store.put("b", frame_with_ids({"x": ("shared", 100), "z": ("b1", 100)}))
        store.demote("a")
        store.demote("b")
        column_files = list((tmp_path / "columns").glob("*.npy"))
        assert len(column_files) == 3  # shared, a1, b1 — not 4
        assert store.cold_bytes == 2400

    def test_shared_column_stays_hot_while_referenced(self, tmp_path):
        store = TieredArtifactStore(directory=tmp_path)
        store.put("a", frame_with_ids({"x": ("shared", 100)}))
        store.put("b", frame_with_ids({"x": ("shared", 100)}))
        store.demote("a")
        # b still holds the column in RAM; a's demotion wrote it to disk
        # without evicting b's copy
        assert store.hot_bytes == 800
        assert store.tier_of("b") is StorageTier.HOT
        store.demote("b")
        assert store.hot_bytes == 0

    def test_remove_cold_vertex_deletes_files(self, tmp_path):
        store = TieredArtifactStore(hot_budget_bytes=0, directory=tmp_path)
        store.put("v", frame_with_ids({"x": ("c1", 100)}))
        assert store.tier_of("v") is StorageTier.COLD
        assert store.remove("v") == 800
        assert not list((tmp_path / "columns").glob("*.npy"))
        assert store.total_bytes == 0

    def test_object_demotion_roundtrip(self, tmp_path):
        store = TieredArtifactStore(hot_budget_bytes=50, directory=tmp_path)
        store.put("m", np.arange(100.0))
        assert store.tier_of("m") is StorageTier.COLD
        assert np.array_equal(store.get("m"), np.arange(100.0))

    def test_negative_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="non-negative"):
            TieredArtifactStore(hot_budget_bytes=-1, directory=tmp_path)


class TestStatistics:
    def test_snapshot_fields(self, tmp_path):
        store = TieredArtifactStore(hot_budget_bytes=1000, directory=tmp_path)
        store.put("a", frame_with_ids({"x": ("ca", 100)}))
        store.put("b", frame_with_ids({"x": ("cb", 100)}))
        store.get("b")
        store.get("a")  # cold hit
        stats = store.statistics()
        assert stats["store_type"] == "TieredArtifactStore"
        assert stats["vertices"] == 2
        assert stats["hot_vertices"] == 1
        assert stats["cold_vertices"] == 1
        assert stats["hot_hits"] == 1
        assert stats["cold_hits"] == 1
        assert stats["demotions"] == 2  # initial eviction + promotion swap
        assert stats["promotions"] == 1
        assert stats["hit_ratio"] == 0.5
        assert stats["hot_bytes"] == 800
        assert stats["cold_bytes"] > 0

    def test_idle_hit_ratio_is_one(self, tmp_path):
        store = TieredArtifactStore(directory=tmp_path)
        assert store.statistics()["hit_ratio"] == 1.0


class TestFlushAndOpen:
    def test_flush_reopen_roundtrip(self, tmp_path):
        store = TieredArtifactStore(hot_budget_bytes=2000, directory=tmp_path)
        frame = DataFrame([Column("x", np.arange(50.0), "c1")])
        store.put("f", frame)
        store.put("m", {"weights": [1, 2, 3]})
        store.flush()

        reopened = TieredArtifactStore.open(tmp_path)
        assert reopened.vertex_ids == {"f", "m"}
        assert reopened.hot_budget_bytes == 2000
        assert reopened.hot_bytes == 0  # lazy: nothing read yet
        assert all(
            reopened.tier_of(v) is StorageTier.COLD for v in reopened.vertex_ids
        )
        assert reopened.total_bytes == store.total_bytes
        assert reopened.get("f") == frame
        assert reopened.get("m") == {"weights": [1, 2, 3]}

    def test_flush_is_write_through(self, tmp_path):
        store = TieredArtifactStore(directory=tmp_path)
        store.put("v", frame_with_ids({"x": ("c1", 100)}))
        store.flush()
        assert store.tier_of("v") is StorageTier.HOT  # not demoted
        assert store.cold_bytes == 800  # but durable

    def test_flush_to_other_directory_copies(self, tmp_path):
        store = TieredArtifactStore(hot_budget_bytes=0, directory=tmp_path / "live")
        store.put("v", frame_with_ids({"x": ("c1", 100)}))
        target = store.flush(tmp_path / "snapshot")
        reopened = TieredArtifactStore.open(target)
        assert reopened.get("v") == store.get("v")

    def test_open_budget_override(self, tmp_path):
        store = TieredArtifactStore(hot_budget_bytes=2000, directory=tmp_path)
        store.put("v", frame_with_ids({"x": ("c1", 100)}))
        store.flush()
        reopened = TieredArtifactStore.open(tmp_path, hot_budget_bytes=None)
        assert reopened.hot_budget_bytes is None

    def test_temp_directory_cleanup(self):
        store = TieredArtifactStore(hot_budget_bytes=0)
        store.put("v", frame_with_ids({"x": ("c1", 100)}))
        directory = store.directory
        assert directory.exists()
        del store
        import gc

        gc.collect()
        assert not directory.exists()
