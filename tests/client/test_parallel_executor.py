"""Parallel executor: identical accounting for every worker count, real
wall-clock speedup on wide DAGs, and thread-safety of the tiered store.

The invariants under test (docs/EXECUTION.md):

* ``compute_time``/``load_time`` and every counter of the
  :class:`ExecutionReport` are bit-identical across ``max_workers`` —
  outcomes are committed in a canonical order, so parallelism only moves
  ``wall_time``;
* reuse decisions (what gets loaded vs computed) never depend on the
  worker count;
* :class:`TieredArtifactStore` survives concurrent hammering — no lost
  columns, no double demotion, and hit counters that add up.
"""

import threading

import numpy as np
import pytest

from repro.client.executor import Executor, VirtualCostModel
from repro.client.parser import parse_workload
from repro.client.scheduler import COMPUTE, LOAD, ReadySetScheduler
from repro.dataframe import DataFrame
from repro.eg.graph import ExperimentGraph
from repro.experiments.runner import make_optimizer
from repro.graph.pruning import prune_workload
from repro.reuse.plan import ReusePlan
from repro.storage import TieredArtifactStore
from repro.workloads.synthetic_dag import (
    build_wide_workload,
    wide_workload_script,
)


def wide_sources(n_rows: int = 64, seed: int = 0):
    rng = np.random.default_rng(seed)
    return {"wide": DataFrame({"x": rng.normal(size=n_rows), "y": rng.normal(size=n_rows)})}


def report_fingerprint(report):
    """Every accounting field that must not depend on the worker count.

    ``total_time`` is excluded only because the full optimizer loop folds
    wall-measured planning seconds into it; it is exactly
    ``compute_time + load_time (+ optimizer_overhead)`` in every path.
    """
    return (
        report.compute_time,
        report.load_time,
        report.executed_vertices,
        report.loaded_vertices,
        report.cold_loaded_vertices,
        report.warmstarted_vertices,
        report.plan_algorithm,
        dict(report.model_qualities),
    )


class TestIdenticalAccounting:
    """max_workers in {1, 4} must produce bit-identical reports."""

    @pytest.mark.parametrize(
        "n_branches,ops_per_branch", [(4, 2), (3, 3), (6, 1)]
    )
    def test_direct_execution(self, n_branches, ops_per_branch):
        reports = []
        for workers in (1, 4):
            workload = build_wide_workload(
                n_branches=n_branches, ops_per_branch=ops_per_branch, op_seconds=0.002
            )
            executor = Executor(cost_model=VirtualCostModel(), max_workers=workers)
            reports.append(executor.execute(workload))
        assert report_fingerprint(reports[0]) == report_fingerprint(reports[1])
        assert reports[0].compute_time == n_branches * ops_per_branch * 0.002

    @pytest.mark.parametrize("workers", [1, 4])
    def test_full_optimizer_sequence(self, workers):
        """Two runs of the same script through the whole loop: the second
        run's reuse decisions and both runs' accounting are identical for
        every worker count (compared against the sequential reference)."""
        script = wide_workload_script(n_branches=4, ops_per_branch=2, op_seconds=0.002)
        sources = wide_sources()

        def run_pair(max_workers):
            optimizer = make_optimizer(
                "SA",
                budget_bytes=10**9,
                reuse="LN",
                cost_model=VirtualCostModel(),
                max_workers=max_workers,
            )
            return [
                report_fingerprint(optimizer.run_script(script, sources))
                for _ in range(2)
            ]

        assert run_pair(workers) == run_pair(1)

    def test_loads_identical_across_worker_counts(self):
        """Explicit reuse plan: loaded vertices and modeled load costs are
        identical whether loads run inline or as prefetch tasks."""
        script = wide_workload_script(n_branches=4, ops_per_branch=2, op_seconds=0.002)
        sources = wide_sources()
        first = parse_workload(script, sources)
        prune_workload(first.dag)
        Executor(cost_model=VirtualCostModel()).execute(first.dag)
        eg = ExperimentGraph()
        eg.union_workload(first.dag)
        loads = set()
        for vertex in first.dag.artifact_vertices():
            if vertex.computed and not vertex.is_source:
                eg.materialize(vertex.vertex_id, vertex.data)
                loads.add(vertex.vertex_id)

        fingerprints = []
        for workers in (1, 4):
            fresh = parse_workload(script, sources)
            prune_workload(fresh.dag)
            executor = Executor(cost_model=VirtualCostModel(), max_workers=workers)
            report = executor.execute(fresh.dag, plan=ReusePlan(loads=set(loads)), eg=eg)
            fingerprints.append(report_fingerprint(report))
            assert report.loaded_vertices == len(loads)
            assert report.executed_vertices == 0
        assert fingerprints[0] == fingerprints[1]


class TestSpeedup:
    def test_wide_dag_speedup(self):
        """Acceptance: >=1.8x wall-clock speedup on a 4-branch DAG with 4
        workers, with identical virtual-cost accounting.  The branches are
        GIL-releasing sleeps, so the bar is conservative even on a loaded
        CI runner (ideal speedup here is ~3.9x)."""
        results = {}
        for workers in (1, 4):
            workload = build_wide_workload(n_branches=4, ops_per_branch=2, op_seconds=0.06)
            executor = Executor(cost_model=VirtualCostModel(), max_workers=workers)
            results[workers] = executor.execute(workload)
        assert results[1].compute_time == results[4].compute_time
        assert results[1].wall_time / results[4].wall_time >= 1.8

    def test_sequential_worker_is_exact_reference(self):
        """max_workers=1 never builds a pool: wall order equals topological
        order, which the prefix-survival failure tests rely on."""
        executor = Executor(cost_model=VirtualCostModel(), max_workers=1)
        workload = build_wide_workload(n_branches=2, ops_per_branch=2, op_seconds=0.0)
        report = executor.execute(workload)
        assert report.executed_vertices == 4

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError, match="max_workers"):
            Executor(max_workers=0)


class TestScheduler:
    def test_critical_path_priority_orders_ready_tasks(self):
        """With one worker slot, the scheduler hands out the head of the
        longest remaining chain first."""
        workload = build_wide_workload(n_branches=1, ops_per_branch=3, op_seconds=0.0)
        deep_ids = [
            v.vertex_id
            for v in workload.artifact_vertices()
            if not v.is_source
        ]
        estimates = {vid: 1.0 for vid in deep_ids}
        scheduler = ReadySetScheduler(workload, set(deep_ids), set(), estimates)
        order = []
        while scheduler.outstanding:
            task = scheduler.next_task()
            assert task.kind in (LOAD, COMPUTE)
            order.append(task.vertex_id)
            scheduler.mark_done(task)
        assert order == list(
            vid for vid in workload.topological_order() if vid in set(deep_ids)
        )


class TestTieredStoreStress:
    N_VERTICES = 10
    N_THREADS = 8
    GETS_PER_THREAD = 30

    def _populated_store(self):
        frames = {}
        store = None
        column_bytes = 512 * 8
        # budget fits ~3 of the 10 vertices: every pass over the working
        # set forces demotions and promotions
        store = TieredArtifactStore(hot_budget_bytes=3 * column_bytes)
        for i in range(self.N_VERTICES):
            frame = DataFrame({f"c{i}": np.full(512, float(i))})
            frames[f"v{i}"] = frame
            store.put(f"v{i}", frame)
        return store, frames

    def test_concurrent_gets_lose_nothing(self):
        store, frames = self._populated_store()
        errors = []
        barrier = threading.Barrier(self.N_THREADS)

        def hammer(thread_index):
            try:
                barrier.wait()
                for k in range(self.GETS_PER_THREAD):
                    index = (thread_index * 7 + k * 3) % self.N_VERTICES
                    got = store.get(f"v{index}")
                    expected = frames[f"v{index}"]
                    assert got.columns == expected.columns
                    column = got.column(f"c{index}")
                    assert np.array_equal(column.values, np.full(512, float(index)))
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

        stats = store.statistics()
        total_gets = self.N_THREADS * self.GETS_PER_THREAD
        # every access is exactly one hot hit or one cold hit
        assert stats["hot_hits"] + stats["cold_hits"] == total_gets
        # no lost vertices or columns, and the accounting balances
        assert stats["vertices"] == self.N_VERTICES
        assert stats["hot_vertices"] + stats["cold_vertices"] == self.N_VERTICES
        assert store.total_bytes == sum(
            frame.column(name).nbytes
            for vid, frame in frames.items()
            for name in frame.columns
        )
        # promotions move vertices COLD->HOT and demotions HOT->COLD; a
        # double demotion would have raised inside a worker (KeyError on
        # the LRU pop) and landed in ``errors`` above
        assert stats["promotions"] == stats["cold_hits"]
        assert store.hot_bytes <= store.hot_budget_bytes
        # after the dust settles every payload is still fully readable
        for i in range(self.N_VERTICES):
            got = store.get(f"v{i}")
            assert np.array_equal(got.column(f"c{i}").values, np.full(512, float(i)))

    def test_inflight_deduplication_single_disk_read(self):
        """Two concurrent gets of one cold vertex trigger one disk read:
        the second consumer waits for the in-flight promotion and is served
        from RAM."""
        frame = DataFrame({"c": np.arange(1024.0)})
        store = TieredArtifactStore(hot_budget_bytes=10 * frame.column("c").nbytes)
        store.put("v", frame)
        store.demote("v")

        results = []
        errors = []
        barrier = threading.Barrier(6)

        def reader():
            try:
                barrier.wait()
                results.append(store.get("v"))
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(results) == 6
        for got in results:
            assert np.array_equal(got.column("c").values, np.arange(1024.0))
        stats = store.statistics()
        assert stats["cold_hits"] == 1
        assert stats["hot_hits"] == 5
        assert stats["promotions"] == 1
