"""Trace-context propagation across the parallel executor's workers.

Satellite invariant: spans created on worker threads must parent to the
submitting execution's root span (the context is passed explicitly with
the task), never to whatever another task left on a worker's stack.
"""

from repro.client.executor import Executor, VirtualCostModel
from repro.obs.trace import Tracer, use_tracer
from repro.workloads.synthetic_dag import build_wide_workload


def _run_traced(max_workers: int):
    workload = build_wide_workload(n_branches=4, ops_per_branch=2, op_seconds=0.002)
    executor = Executor(cost_model=VirtualCostModel(), max_workers=max_workers)
    with use_tracer(Tracer()) as tracer:
        report = executor.execute(workload)
    return tracer, report


class TestParallelPropagation:
    def test_worker_spans_parent_to_the_execute_root(self):
        tracer, _report = _run_traced(max_workers=4)
        spans = tracer.finished_spans()
        [root] = [s for s in spans if s.name == "executor.execute"]
        computes = [s for s in spans if s.name == "executor.compute"]
        assert len(computes) == 8  # 4 branches x 2 ops
        for span in computes:
            assert span.parent_id == root.span_id
            assert span.trace_id == root.trace_id

    def test_worker_threads_actually_ran_the_spans(self):
        tracer, _report = _run_traced(max_workers=4)
        computes = [s for s in tracer.finished_spans() if s.name == "executor.compute"]
        # the pool ran them, not the coordinating thread
        assert any(s.thread_name != computes[0].thread_name or True for s in computes)
        assert all("ThreadPoolExecutor" in s.thread_name for s in computes)

    def test_sequential_spans_nest_under_the_same_root(self):
        tracer, _report = _run_traced(max_workers=1)
        spans = tracer.finished_spans()
        [root] = [s for s in spans if s.name == "executor.execute"]
        computes = [s for s in spans if s.name == "executor.compute"]
        assert computes and all(s.parent_id == root.span_id for s in computes)

    def test_two_executions_never_share_a_trace(self):
        workload_a = build_wide_workload(n_branches=2, ops_per_branch=1, op_seconds=0.001)
        workload_b = build_wide_workload(n_branches=3, ops_per_branch=1, op_seconds=0.001)
        executor = Executor(cost_model=VirtualCostModel(), max_workers=2)
        with use_tracer(Tracer()) as tracer:
            executor.execute(workload_a)
            executor.execute(workload_b)
        roots = [s for s in tracer.finished_spans() if s.name == "executor.execute"]
        assert len(roots) == 2
        assert roots[0].trace_id != roots[1].trace_id
        for span in tracer.finished_spans():
            assert span.trace_id in {roots[0].trace_id, roots[1].trace_id}


class TestProfileAttachment:
    def test_report_carries_a_profile_when_tracing(self):
        _tracer, report = _run_traced(max_workers=4)
        assert report.profile is not None
        names = {entry.name for entry in report.profile.entries}
        assert "executor.compute" in names
        assert report.profile.span_count >= 9  # root + 8 computes

    def test_no_profile_under_the_noop_default(self):
        workload = build_wide_workload(n_branches=2, ops_per_branch=1, op_seconds=0.001)
        executor = Executor(cost_model=VirtualCostModel(), max_workers=2)
        report = executor.execute(workload)
        assert report.profile is None
