"""Interactive (notebook) workloads: the DAG grows across cell invocations.

Paper Section 3.1: in Jupyter-style sessions every cell invocation computes
some vertices; later invocations mark those edges inactive and only the new
suffix executes.
"""

import numpy as np

from repro.client.api import Workspace
from repro.client.executor import Executor
from repro.dataframe import DataFrame
from repro.graph.pruning import prune_workload
from repro.ml import LogisticRegression


def make_frame():
    rng = np.random.default_rng(0)
    return DataFrame(
        {
            "a": rng.normal(size=40),
            "b": rng.normal(size=40),
            "y": (rng.random(40) > 0.5).astype(np.int64),
        }
    )


class TestInteractiveSession:
    def test_cell_by_cell_execution(self):
        ws = Workspace()
        # cell 1: load + select
        train = ws.source("train", make_frame())
        X = train[["a", "b"]]
        X.terminal()
        prune_workload(ws.dag)
        first = Executor().execute(ws.dag)
        assert first.executed_vertices == 1

        # cell 2: extend with a model; X is already computed
        y = train["y"]
        model = X.fit(LogisticRegression(max_iter=10), y=y)
        ws.dag.terminals.clear()
        model.terminal()
        prune_workload(ws.dag)
        second = Executor().execute(ws.dag)
        # only y and the model execute; X is served from client memory
        assert second.executed_vertices == 2
        assert ws.dag.vertex(model.vertex_id).computed

    def test_recomputation_not_triggered_for_computed_prefix(self):
        ws = Workspace()
        train = ws.source("train", make_frame())
        X = train[["a", "b"]]
        X.terminal()
        prune_workload(ws.dag)
        Executor().execute(ws.dag)
        before = ws.dag.vertex(X.vertex_id).data

        X2 = train[["a", "b"]]  # same cell re-evaluated
        assert X2.vertex_id == X.vertex_id
        prune_workload(ws.dag)
        report = Executor().execute(ws.dag)
        assert report.executed_vertices == 0
        assert ws.dag.vertex(X.vertex_id).data is before

    def test_pruner_marks_computed_edges_inactive(self):
        ws = Workspace()
        train = ws.source("train", make_frame())
        X = train[["a"]]
        X.terminal()
        prune_workload(ws.dag)
        Executor().execute(ws.dag)
        pruned = prune_workload(ws.dag)
        assert pruned >= 1
        assert not ws.dag.edge_active(train.vertex_id, X.vertex_id)
