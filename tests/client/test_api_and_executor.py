"""Tests for the Workspace API (lazy + eager) and the executor."""

import numpy as np
import pytest

from repro.client.api import AggregateNode, DatasetNode, ModelNode, Workspace
from repro.client.executor import Executor, VirtualCostModel
from repro.client.parser import parse_workload
from repro.dataframe import DataFrame
from repro.eg.graph import ExperimentGraph
from repro.eg.storage import LoadCostModel
from repro.graph.artifacts import ArtifactType
from repro.graph.pruning import prune_workload
from repro.ml import LogisticRegression, StandardScaler
from repro.reuse.plan import ReusePlan


@pytest.fixture
def frame():
    rng = np.random.default_rng(0)
    return DataFrame(
        {
            "a": rng.normal(size=50),
            "b": rng.normal(size=50),
            "y": (rng.random(50) > 0.5).astype(np.int64),
        }
    )


def build_script(frame):
    def script(ws, sources):
        train = ws.source("train", sources["train"])
        X = train[["a", "b"]]
        y = train["y"]
        model = X.fit(LogisticRegression(max_iter=10), y=y, scorer="train_auc")
        model.terminal()
        model.evaluate(X, y).terminal()

    return script, {"train": frame}


class TestLazyWorkspace:
    def test_nodes_have_vertex_ids(self, frame):
        ws = Workspace()
        train = ws.source("train", frame)
        X = train[["a"]]
        assert isinstance(X, DatasetNode)
        assert X.vertex_id in ws.dag

    def test_node_types(self, frame):
        ws = Workspace()
        train = ws.source("train", frame)
        model = train[["a", "b"]].fit(LogisticRegression(), y=train["y"])
        agg = train.describe()
        assert isinstance(model, ModelNode)
        assert isinstance(agg, AggregateNode)

    def test_nothing_executes_lazily(self, frame):
        ws = Workspace()
        train = ws.source("train", frame)
        X = train[["a"]]
        assert ws.dag.vertex(X.vertex_id).computed is False

    def test_identical_calls_share_vertices(self, frame):
        ws = Workspace()
        train = ws.source("train", frame)
        a1 = train[["a"]]
        a2 = train[["a"]]
        assert a1.vertex_id == a2.vertex_id

    def test_align_returns_two_nodes(self, frame):
        ws = Workspace()
        left = ws.source("l", frame)
        right = ws.source("r", frame[["a"]])
        al, ar = left.align(right)
        assert al.vertex_id != ar.vertex_id

    def test_fit_eval_inputs_require_labels(self, frame):
        ws = Workspace()
        train = ws.source("train", frame)
        with pytest.raises(ValueError, match="labels"):
            train[["a"]].fit(StandardScaler(), eval_X=train, eval_y=train)

    def test_parse_workload_requires_terminal(self, frame):
        def script(ws, sources):
            ws.source("train", sources["train"])

        with pytest.raises(ValueError, match="terminal"):
            parse_workload(script, {"train": frame})


class TestEagerWorkspace:
    def test_values_computed_immediately(self, frame):
        ws = Workspace(eager=True)
        train = ws.source("train", frame)
        X = train[["a"]]
        assert isinstance(X.payload, DataFrame)
        assert X.payload.columns == ["a"]

    def test_time_and_ops_accumulate(self, frame):
        ws = Workspace(eager=True)
        train = ws.source("train", frame)
        train[["a"]]
        train[["b"]]
        assert ws.eager_ops == 2
        assert ws.eager_time >= 0.0

    def test_redundant_calls_reexecute(self, frame):
        """Eager mode has no dedup — the KG baseline's defining property."""
        ws = Workspace(eager=True)
        train = ws.source("train", frame)
        train[["a"]]
        train[["a"]]
        assert ws.eager_ops == 2

    def test_value_accessor(self, frame):
        ws = Workspace(eager=True)
        node = ws.source("train", frame)[["a"]]
        assert node.value.columns == ["a"]


class TestExecutor:
    def test_executes_and_scores(self, frame):
        script, sources = build_script(frame)
        workspace = parse_workload(script, sources)
        prune_workload(workspace.dag)
        report = Executor().execute(workspace.dag)
        assert report.executed_vertices > 0
        assert len(report.model_qualities) == 1
        assert report.total_time > 0.0

    def test_terminal_values_filled(self, frame):
        script, sources = build_script(frame)
        workspace = parse_workload(script, sources)
        prune_workload(workspace.dag)
        report = Executor().execute(workspace.dag)
        values = list(report.terminal_values.values())
        assert any(isinstance(v, float) for v in values)  # the evaluation

    def test_requires_terminals(self, frame):
        ws = Workspace()
        ws.source("train", frame)
        with pytest.raises(ValueError, match="terminal"):
            Executor().execute(ws.dag)

    def test_virtual_cost_model(self, frame):
        ws = Workspace()
        train = ws.source("train", frame)
        X = train[["a"]]
        operation = ws.dag.incoming_operation(X.vertex_id)
        operation.virtual_cost = 42.0
        X.terminal()
        report = Executor(cost_model=VirtualCostModel()).execute(ws.dag)
        assert report.compute_time == 42.0
        assert ws.dag.vertex(X.vertex_id).compute_time == 42.0

    def test_loads_from_plan(self, frame):
        script, sources = build_script(frame)
        first = parse_workload(script, sources)
        prune_workload(first.dag)
        Executor().execute(first.dag)
        eg = ExperimentGraph()
        eg.union_workload(first.dag)
        for vertex in first.dag.artifact_vertices():
            if vertex.computed and not vertex.is_source:
                eg.materialize(vertex.vertex_id, vertex.data)

        second = parse_workload(script, sources)
        prune_workload(second.dag)
        loads = {second.dag.terminals[0]}
        report = Executor().execute(second.dag, plan=ReusePlan(loads=loads), eg=eg)
        assert report.loaded_vertices == 1
        assert report.load_time > 0.0
        assert second.dag.vertex(second.dag.terminals[0]).computed

    def test_load_without_eg_rejected(self, frame):
        script, sources = build_script(frame)
        workspace = parse_workload(script, sources)
        with pytest.raises(ValueError, match="Experiment Graph"):
            Executor().execute(workspace.dag, plan=ReusePlan(loads={"x"}))

    def test_only_needed_vertices_execute(self, frame):
        ws = Workspace()
        train = ws.source("train", frame)
        needed = train[["a"]]
        train[["b"]]  # dead branch
        needed.terminal()
        prune_workload(ws.dag)
        report = Executor().execute(ws.dag)
        assert report.executed_vertices == 1

    def test_load_time_uses_cost_model(self, frame):
        script, sources = build_script(frame)
        first = parse_workload(script, sources)
        prune_workload(first.dag)
        Executor().execute(first.dag)
        eg = ExperimentGraph()
        eg.union_workload(first.dag)
        terminal = first.dag.terminals[0]
        eg.materialize(terminal, first.dag.vertex(terminal).data)

        slow = LoadCostModel(bandwidth_bytes_per_s=1.0, latency_s=5.0)
        second = parse_workload(script, sources)
        prune_workload(second.dag)
        report = Executor(load_cost_model=slow).execute(
            second.dag, plan=ReusePlan(loads={terminal}), eg=eg
        )
        assert report.load_time >= 5.0
