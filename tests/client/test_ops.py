"""Tests for the concrete operation library."""

import numpy as np
import pytest

from repro.client import ops
from repro.dataframe import DataFrame
from repro.ml import (
    CountVectorizer,
    LogisticRegression,
    SelectKBest,
    StandardScaler,
)


@pytest.fixture
def frame():
    return DataFrame(
        {
            "k": [1, 2, 3, 4],
            "x": [1.0, 2.0, 3.0, 4.0],
            "y": [0, 0, 1, 1],
            "cat": np.asarray(["a", "b", "a", "b"], dtype=object),
        }
    )


class TestDatasetOps:
    def test_select(self, frame):
        out = ops.SelectColumnsOp(["x"]).run(frame)
        assert out.columns == ["x"]

    def test_drop(self, frame):
        out = ops.DropColumnsOp(["cat"]).run(frame)
        assert "cat" not in out

    def test_rename(self, frame):
        out = ops.RenameOp({"x": "feature"}).run(frame)
        assert "feature" in out

    def test_fillna(self):
        frame = DataFrame({"x": [1.0, np.nan]})
        out = ops.FillNAOp(strategy="zero").run(frame)
        assert out.values("x")[1] == 0.0

    def test_one_hot(self, frame):
        out = ops.OneHotOp("cat").run(frame)
        assert "cat_a" in out and "cat_b" in out

    def test_groupby(self, frame):
        out = ops.GroupByAggOp("y", {"x": "sum"}).run(frame)
        assert list(out.values("x_sum")) == [3.0, 7.0]

    def test_sample(self, frame):
        out = ops.SampleOp(2, random_state=1).run(frame)
        assert out.num_rows == 2

    def test_map_column(self, frame):
        out = ops.MapColumnOp("x", lambda v: v * 10, "times10").run(frame)
        assert list(out.values("x")) == [10.0, 20.0, 30.0, 40.0]

    def test_filter(self, frame):
        out = ops.FilterOp(lambda f: f.values("x") > 2.0, "gt2").run(frame)
        assert out.num_rows == 2

    def test_add_column(self, frame):
        out = ops.AddColumnOp("double", lambda f: f.values("x") * 2, "dbl").run(frame)
        assert list(out.values("double")) == [2.0, 4.0, 6.0, 8.0]

    def test_describe_returns_aggregate(self, frame):
        summary = ops.DescribeOp().run(frame)
        assert summary["x"]["mean"] == pytest.approx(2.5)

    def test_type_check(self):
        with pytest.raises(TypeError, match="DataFrame"):
            ops.SelectColumnsOp(["x"]).run(42)

    def test_hash_determinism(self):
        assert ops.SelectColumnsOp(["a"]).op_hash == ops.SelectColumnsOp(["a"]).op_hash
        assert ops.SelectColumnsOp(["a"]).op_hash != ops.SelectColumnsOp(["b"]).op_hash


class TestMultiInputOps:
    def test_merge(self, frame):
        other = DataFrame({"k": [1, 2], "z": [5.0, 6.0]})
        out = ops.MergeOp(on="k").run([frame, other])
        assert out.num_rows == 2
        assert "z" in out

    def test_concat_columns(self, frame):
        other = DataFrame({"w": [1.0, 2.0, 3.0, 4.0]})
        out = ops.ConcatColumnsOp().run([frame, other])
        assert out.num_columns == 5

    def test_concat_rows(self):
        a = DataFrame({"x": [1.0]})
        b = DataFrame({"x": [2.0]})
        out = ops.ConcatRowsOp().run([a, b])
        assert out.num_rows == 2

    def test_align_sides(self):
        left = DataFrame({"a": [1.0], "b": [2.0]})
        right = DataFrame({"b": [3.0], "c": [4.0]})
        assert ops.AlignOp("left").run([left, right]).columns == ["b"]
        assert ops.AlignOp("right").run([left, right]).columns == ["b"]
        assert ops.AlignOp("left").op_hash != ops.AlignOp("right").op_hash

    def test_align_rejects_bad_side(self):
        with pytest.raises(ValueError):
            ops.AlignOp("middle")


class TestModelOps:
    @pytest.fixture
    def Xy(self, frame):
        return frame[["x", "k"]], frame[["y"]]

    def test_fit_supervised(self, Xy):
        X, y = Xy
        model = ops.FitOp(LogisticRegression(max_iter=5)).run([X, y])
        assert model.is_fitted

    def test_fit_hash_covers_hyperparams(self):
        a = ops.FitOp(LogisticRegression(C=1.0))
        b = ops.FitOp(LogisticRegression(C=2.0))
        assert a.op_hash != b.op_hash

    def test_fit_scorer_quality(self, Xy):
        X, y = Xy
        op = ops.FitOp(LogisticRegression(max_iter=20), scorer="train_accuracy")
        model = op.run([X, y])
        quality = op.score(model, [X, y])
        assert 0.0 <= quality <= 1.0

    def test_fit_scorer_uses_eval_pair_when_present(self, Xy):
        X, y = Xy
        op = ops.FitOp(LogisticRegression(max_iter=20), scorer="train_accuracy")
        model = op.run([X, y])
        degenerate_y = DataFrame({"y": [1, 1, 1, 1]})
        quality_eval = op.score(model, [X, y, X, degenerate_y])
        quality_train = op.score(model, [X, y])
        predictions = model.predict(X.to_numpy())
        expected_eval = float(np.mean(predictions == 1))
        assert quality_eval == pytest.approx(expected_eval)
        assert quality_train != quality_eval or expected_eval == quality_train

    def test_fit_unknown_scorer(self):
        with pytest.raises(ValueError, match="unknown scorer"):
            ops.FitOp(LogisticRegression(), scorer="nope")

    def test_fit_unsupervised(self, Xy):
        X, _y = Xy
        scaler = ops.FitOp(StandardScaler(), supervised=False).run(X)
        assert scaler.is_fitted

    def test_warmstartable_flag_follows_estimator(self):
        assert ops.FitOp(LogisticRegression()).warmstartable
        assert not ops.FitOp(StandardScaler(), supervised=False).warmstartable

    def test_fit_warmstarted(self, Xy):
        X, y = Xy
        op = ops.FitOp(LogisticRegression(max_iter=5))
        base = op.run([X, y])
        warm = op.run_warmstarted([X, y], base)
        assert warm.warm_started_

    def test_transform_with_model(self, Xy):
        X, _ = Xy
        scaler = ops.FitOp(StandardScaler(), supervised=False).run(X)
        out = ops.TransformOp(prefix="scaled").run([scaler, X])
        assert isinstance(out, DataFrame)
        assert out.num_columns == 2
        assert out.columns == ["scaled_0", "scaled_1"]

    def test_transform_lineage_deterministic(self, Xy):
        X, _ = Xy
        scaler = ops.FitOp(StandardScaler(), supervised=False).run(X)
        op = ops.TransformOp(prefix="scaled")
        assert op.run([scaler, X]).column_ids == op.run([scaler, X]).column_ids

    def test_fit_transform_supervised_selector(self, Xy):
        X, y = Xy
        out = ops.FitTransformOp(SelectKBest(k=1), prefix="kb", supervised=True).run(
            [X, y]
        )
        assert out.num_columns == 1

    def test_fit_transform_text(self):
        docs = DataFrame(
            {"text": np.asarray(["hello world", "hello there"], dtype=object)}
        )
        out = ops.FitTransformOp(CountVectorizer(), prefix="cv").run(docs)
        assert out.num_columns == 3  # hello, world, there

    def test_predict_op(self, Xy):
        X, y = Xy
        model = ops.FitOp(LogisticRegression(max_iter=10)).run([X, y])
        out = ops.PredictOp().run([model, X])
        assert out.columns == ["prediction"]
        proba = ops.PredictOp(proba=True).run([model, X])
        assert np.all((proba.values("prediction") >= 0) & (proba.values("prediction") <= 1))

    def test_evaluate_op(self, Xy):
        X, y = Xy
        model = ops.FitOp(LogisticRegression(max_iter=10)).run([X, y])
        auc = ops.EvaluateOp("roc_auc").run([model, X, y])
        acc = ops.EvaluateOp("accuracy").run([model, X, y])
        assert 0.0 <= auc <= 1.0
        assert 0.0 <= acc <= 1.0

    def test_evaluate_unknown_metric(self):
        with pytest.raises(ValueError):
            ops.EvaluateOp("f2")
