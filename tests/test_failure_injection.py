"""Failure-injection tests: the system must fail loudly and stay consistent.

Covers: operations raising mid-execution, store corruption (payload lost
behind the materialization flag), planner inputs with stale EG state, and
invalid user input at API boundaries.
"""

import numpy as np
import pytest

from repro.client.api import Workspace
from repro.client.executor import Executor
from repro.dataframe import DataFrame
from repro.eg.graph import ExperimentGraph
from repro.eg.updater import Updater
from repro.graph.dag import WorkloadDAG
from repro.graph.operations import DataOperation
from repro.graph.pruning import prune_workload
from repro.materialization.simple import MaterializeAll
from repro.reuse.linear import LinearReuse
from repro.reuse.plan import ReusePlan


class Boom(DataOperation):
    """An operation that fails after a configurable number of calls."""

    calls = 0

    def __init__(self, fail_on_call: int = 1):
        super().__init__("boom", params={"fail_on_call": fail_on_call})
        self.fail_on_call = fail_on_call

    def run(self, underlying_data):
        type(self).calls += 1
        if type(self).calls >= self.fail_on_call:
            raise RuntimeError("injected operation failure")
        return underlying_data


class Identity(DataOperation):
    def __init__(self, tag):
        super().__init__("identity", params={"tag": tag})

    def run(self, underlying_data):
        return underlying_data


@pytest.fixture(autouse=True)
def reset_boom_counter():
    Boom.calls = 0


def frame():
    return DataFrame({"x": np.arange(4.0)})


class TestOperationFailures:
    def test_failure_propagates_with_context(self):
        dag = WorkloadDAG()
        src = dag.add_source("s", payload=frame())
        out = dag.add_operation([src], Boom())
        dag.mark_terminal(out)
        with pytest.raises(RuntimeError, match="injected"):
            Executor().execute(dag)

    def test_prefix_results_survive_failure(self):
        """Vertices computed before the failure keep their payloads."""
        dag = WorkloadDAG()
        src = dag.add_source("s", payload=frame())
        good = dag.add_operation([src], Identity("ok"))
        bad = dag.add_operation([good], Boom())
        dag.mark_terminal(bad)
        with pytest.raises(RuntimeError):
            Executor().execute(dag)
        assert dag.vertex(good).computed
        assert not dag.vertex(bad).computed

    def test_partial_dag_can_still_update_eg(self):
        """The updater accepts a partially executed DAG (meta-data only)."""
        dag = WorkloadDAG()
        src = dag.add_source("s", payload=frame())
        good = dag.add_operation([src], Identity("ok"))
        bad = dag.add_operation([good], Boom())
        dag.mark_terminal(bad)
        with pytest.raises(RuntimeError):
            Executor().execute(dag)
        eg = ExperimentGraph()
        Updater(eg, MaterializeAll()).update(dag)
        assert eg.vertex(good).materialized
        assert not eg.vertex(bad).materialized

    def test_retry_after_failure_succeeds(self):
        dag = WorkloadDAG()
        src = dag.add_source("s", payload=frame())
        flaky = dag.add_operation([src], Boom(fail_on_call=1))
        dag.mark_terminal(flaky)
        with pytest.raises(RuntimeError):
            Executor().execute(dag)
        # second attempt: the operation now succeeds (fail_on_call passed)
        Boom.calls = 10  # past the failure point, run() raises forever...
        operation = dag.incoming_operation(flaky)
        operation.fail_on_call = 10**9  # repaired operation
        type(operation).calls = 0

        def run_ok(underlying_data):
            return underlying_data

        operation.run = run_ok
        report = Executor().execute(dag)
        assert report.executed_vertices == 1


class RaisingLoadCostModel:
    """Prices every load by raising — models a cost model fed bad sizes."""

    def cost(self, size_bytes):
        raise RuntimeError("injected cost-model failure")

    def cost_for_tier(self, size_bytes, tier):
        raise RuntimeError("injected cost-model failure")


class TestAtomicReportAccounting:
    """A vertex contributes all of its report counters or none.

    Regression tests: the executor used to mutate the report field by
    field while processing a vertex, so a failure mid-vertex (operation
    raising, or the load-cost model raising after the payload was fetched)
    left ``executed_vertices``/``loaded_vertices`` inconsistent with
    ``compute_time``/``load_time``.  Outcomes are now staged per vertex
    and committed atomically.
    """

    def _two_step_dag(self):
        dag = WorkloadDAG()
        src = dag.add_source("s", payload=frame())
        good_op = Identity("ok")
        good_op.virtual_cost = 1.0
        good = dag.add_operation([src], good_op)
        bad = dag.add_operation([good], Boom())
        dag.mark_terminal(bad)
        return dag

    @pytest.mark.parametrize("workers", [1, 4])
    def test_failed_compute_contributes_nothing(self, workers):
        from repro.client.executor import ExecutionReport, VirtualCostModel

        dag = self._two_step_dag()
        report = ExecutionReport()
        executor = Executor(cost_model=VirtualCostModel(), max_workers=workers)
        with pytest.raises(RuntimeError, match="injected"):
            executor.execute(dag, report=report)
        # the good vertex committed fully; the failing one not at all
        assert report.executed_vertices == 1
        assert report.compute_time == 1.0
        assert report.loaded_vertices == 0
        assert report.load_time == 0.0

    @pytest.mark.parametrize("workers", [1, 4])
    def test_failed_load_contributes_nothing(self, workers):
        from repro.client.executor import ExecutionReport

        dag = WorkloadDAG()
        src = dag.add_source("s", payload=frame())
        out = dag.add_operation([src], Identity("a"))
        dag.mark_terminal(out)
        Executor().execute(dag)
        eg = ExperimentGraph()
        Updater(eg, MaterializeAll()).update(dag)

        fresh = WorkloadDAG()
        fresh_src = fresh.add_source("s", payload=frame())
        fresh_out = fresh.add_operation([fresh_src], Identity("a"))
        fresh.mark_terminal(fresh_out)
        report = ExecutionReport()
        executor = Executor(load_cost_model=RaisingLoadCostModel(), max_workers=workers)
        with pytest.raises(RuntimeError, match="cost-model"):
            executor.execute(
                fresh, plan=ReusePlan(loads={fresh_out}), eg=eg, report=report
            )
        # nothing half-counted: the load failed before its commit, so the
        # report shows no loads and no load time — and the workload vertex
        # was not marked computed either (cost is priced before mutation)
        assert report.loaded_vertices == 0
        assert report.load_time == 0.0
        assert not fresh.vertex(fresh_out).computed


class TestStoreCorruption:
    def test_materialized_flag_without_payload_raises(self):
        dag = WorkloadDAG()
        src = dag.add_source("s", payload=frame())
        out = dag.add_operation([src], Identity("a"))
        dag.mark_terminal(out)
        Executor().execute(dag)
        eg = ExperimentGraph()
        Updater(eg, MaterializeAll()).update(dag)
        # corruption: flag says materialized, store lost the bytes
        eg.store.remove(out)

        fresh = WorkloadDAG()
        fresh_src = fresh.add_source("s", payload=frame())
        fresh_out = fresh.add_operation([fresh_src], Identity("a"))
        fresh.mark_terminal(fresh_out)
        plan = ReusePlan(loads={fresh_out})
        with pytest.raises(KeyError, match="not materialized"):
            Executor().execute(fresh, plan=plan, eg=eg)

    def test_unmaterialize_heals_the_flag(self):
        dag = WorkloadDAG()
        src = dag.add_source("s", payload=frame())
        out = dag.add_operation([src], Identity("a"))
        dag.mark_terminal(out)
        Executor().execute(dag)
        eg = ExperimentGraph()
        Updater(eg, MaterializeAll()).update(dag)
        eg.unmaterialize(out)
        # the planner no longer tries to load the vertex
        fresh = WorkloadDAG()
        fresh_src = fresh.add_source("s", payload=frame())
        fresh_out = fresh.add_operation([fresh_src], Identity("a"))
        fresh.mark_terminal(fresh_out)
        plan = LinearReuse().plan(fresh, eg)
        assert fresh_out not in plan.loads


class TestApiBoundaryErrors:
    def test_workspace_source_then_bad_column(self):
        ws = Workspace()
        train = ws.source("t", frame())
        bad = train[["nope"]]
        bad.terminal()
        prune_workload(ws.dag)
        with pytest.raises(KeyError, match="nope"):
            Executor().execute(ws.dag)

    def test_merge_on_missing_key_fails_at_execution(self):
        ws = Workspace()
        left = ws.source("l", frame())
        right = ws.source("r", DataFrame({"y": np.arange(4.0)}))
        joined = left.merge(right, on="k")
        joined.terminal()
        prune_workload(ws.dag)
        with pytest.raises(KeyError):
            Executor().execute(ws.dag)

    def test_eager_mode_fails_immediately(self):
        ws = Workspace(eager=True)
        train = ws.source("t", frame())
        with pytest.raises(KeyError, match="nope"):
            train[["nope"]]
