"""SLO engine: sources, multi-window burn-rate alerting, the journal."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    SLO,
    BurnWindow,
    CounterRatioSource,
    GaugeBelowSource,
    HistogramLatencySource,
    SLOEngine,
    default_service_slos,
)


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


WINDOW = BurnWindow(short_s=10.0, long_s=30.0, threshold=2.0, severity="page")


def ratio_engine(source_registry: MetricsRegistry, clock: FakeClock, **kwargs) -> SLOEngine:
    slo = SLO(
        "shed-rate",
        CounterRatioSource("shed_total", "requests_total"),
        objective=0.9,
    )
    return SLOEngine(
        [slo],
        registries=[source_registry],
        windows=(WINDOW,),
        min_eval_interval_s=0.0,
        clock=clock,
        **kwargs,
    )


class TestSources:
    def test_counter_ratio_none_until_total_exists(self):
        registry = MetricsRegistry()
        source = CounterRatioSource("bad_total", "all_total")
        assert source.sample([registry], {}) is None
        registry.counter("all_total").inc(10)
        assert source.sample([registry], {}) == (0.0, 10.0)
        registry.counter("bad_total").inc(3)
        assert source.sample([registry], {}) == (3.0, 10.0)

    def test_counter_ratio_sums_labels_and_registries(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("all_total", labelnames=("op",)).inc(4, op="plan")
        first.counter("all_total", labelnames=("op",)).inc(6, op="commit")
        second.counter("all_total").inc(10)
        source = CounterRatioSource("bad_total", "all_total")
        assert source.sample([first, second], {}) == (0.0, 20.0)

    def test_histogram_latency_counts_above_threshold_as_bad(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)  # good: <= 1.0 bound
        hist.observe(0.5)  # good
        hist.observe(5.0)  # +Inf bucket: bad
        source = HistogramLatencySource("latency_seconds", 1.0)
        assert source.sample([registry], {}) == (1.0, 3.0)

    def test_histogram_latency_absent_means_no_sample(self):
        source = HistogramLatencySource("latency_seconds", 1.0)
        assert source.sample([MetricsRegistry()], {}) is None

    def test_gauge_below_accumulates_per_evaluation(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("healthy", labelnames=("model",))
        source = GaugeBelowSource("healthy", minimum=1.0)
        state: dict = {}
        assert source.sample([registry], state) is None  # no series yet
        gauge.set(1.0, model="a")
        gauge.set(0.0, model="b")
        assert source.sample([registry], state) == (1.0, 2.0)
        assert source.sample([registry], state) == (2.0, 4.0)
        gauge.set(1.0, model="b")
        assert source.sample([registry], state) == (2.0, 6.0)


class TestBurnAlerting:
    def test_fires_on_sustained_burn_and_resolves_after(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        engine = ratio_engine(registry, clock)
        shed = registry.counter("shed_total")
        requests = registry.counter("requests_total")

        requests.inc(10)
        assert engine.evaluate() == []  # single sample: no burn yet

        clock.now = 5.0
        shed.inc(8)
        requests.inc(10)
        [event] = engine.evaluate()
        # 8 bad / 20 requests = 40% bad over a 10% budget -> burn 4 >= 2
        assert event.state == "firing"
        assert event.severity == "page"
        assert event.burn_short >= WINDOW.threshold
        assert engine.active() == [{"slo": "shed-rate", "severity": "page"}]
        assert engine.status()["shed-rate"]["firing"] is True

        clock.now = 45.0  # both windows have rolled past the bad burst
        requests.inc(100)
        [event] = engine.evaluate()
        assert event.state == "resolved"
        assert engine.active() == []

    def test_short_blip_does_not_fire_the_long_window(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        engine = ratio_engine(registry, clock)
        shed = registry.counter("shed_total")
        requests = registry.counter("requests_total")

        requests.inc(1000)
        engine.evaluate()
        clock.now = 25.0
        requests.inc(1000)
        engine.evaluate()
        # burst confined to the short window: long window dilutes it
        clock.now = 29.0
        shed.inc(60)
        requests.inc(100)
        assert engine.evaluate() == []
        assert engine.active() == []

    def test_missing_metrics_never_alert(self):
        engine = ratio_engine(MetricsRegistry(), FakeClock())
        assert engine.evaluate() == []
        status = engine.status()["shed-rate"]
        assert status["firing"] is False
        assert status["total"] == 0.0

    def test_journal_is_bounded_and_oldest_first(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        engine = ratio_engine(registry, clock, journal_size=4)
        shed = registry.counter("shed_total")
        requests = registry.counter("requests_total")
        requests.inc(10)
        engine.evaluate()
        for flap in range(4):
            clock.now += 50.0
            shed.inc(40)
            requests.inc(50)
            engine.evaluate()  # fires
            clock.now += 50.0
            requests.inc(1000)
            engine.evaluate()  # resolves
        journal = engine.journal()
        assert len(journal) == 4
        states = [entry["state"] for entry in journal]
        assert states == ["firing", "resolved", "firing", "resolved"]
        assert journal[0]["at_s"] < journal[-1]["at_s"]

    def test_maybe_evaluate_rate_limits(self):
        registry = MetricsRegistry()
        registry.counter("requests_total").inc(5)
        clock = FakeClock()
        slo = SLO(
            "shed-rate",
            CounterRatioSource("shed_total", "requests_total"),
            objective=0.9,
        )
        engine = SLOEngine(
            [slo],
            registries=[registry],
            windows=(WINDOW,),
            min_eval_interval_s=10.0,
            clock=clock,
        )
        engine.maybe_evaluate()
        clock.now = 5.0
        engine.maybe_evaluate()  # inside the interval: skipped
        assert engine.status()["shed-rate"]["total"] == 5.0
        clock.now = 11.0
        registry.counter("requests_total").inc(5)
        engine.maybe_evaluate()
        assert engine.status()["shed-rate"]["total"] == 10.0

    def test_publishes_gauges_and_transition_counter(self):
        source_registry = MetricsRegistry()
        own_registry = MetricsRegistry()
        clock = FakeClock()
        engine = ratio_engine(source_registry, clock, registry=own_registry)
        shed = source_registry.counter("shed_total")
        requests = source_registry.counter("requests_total")
        requests.inc(10)
        engine.evaluate()
        clock.now = 5.0
        shed.inc(8)
        requests.inc(10)
        engine.evaluate()
        firing = own_registry.get("repro_obs_slo_firing")
        assert firing.value(slo="shed-rate") == 1.0
        burn = own_registry.get("repro_obs_slo_burn_rate")
        assert burn.value(slo="shed-rate", window="10s/30s", severity="page") >= 2.0
        alerts = own_registry.get("repro_obs_slo_alerts_total")
        assert alerts.value(slo="shed-rate", severity="page", state="firing") == 1.0

    def test_duplicate_slo_names_rejected(self):
        slo = SLO("dup", CounterRatioSource("a", "b"))
        with pytest.raises(ValueError):
            SLOEngine([slo, slo])


class TestDefaultServiceSLOs:
    def test_names_and_clean_evaluation_on_empty_registries(self):
        slos = default_service_slos()
        assert [slo.name for slo in slos] == [
            "merge-batch-p99",
            "plan-latency-p95",
            "queue-wait-p99",
            "cold-hit-rate",
            "shed-rate",
            "predictor-health",
        ]
        engine = SLOEngine(
            slos, registries=[MetricsRegistry()], clock=FakeClock()
        )
        assert engine.evaluate() == []
        assert engine.active() == []
