"""Tracing core: span trees, thread-local context, the no-op default."""

import threading

from repro.obs.sinks import InMemorySink
from repro.obs.trace import (
    NOOP_SPAN,
    NoopTracer,
    Span,
    SpanContext,
    Tracer,
    get_tracer,
    use_tracer,
)


class TestSpanLifecycle:
    def test_context_manager_times_and_records(self):
        tracer = Tracer()
        with tracer.span("work", kind="test") as span:
            assert not span.finished
        assert span.finished
        assert span.duration_s >= 0.0
        assert span.attributes["kind"] == "test"
        assert tracer.finished_spans() == [span]

    def test_finish_is_idempotent(self):
        tracer = Tracer()
        span = tracer.span("once")
        span.finish()
        end = span.end_s
        span.finish()
        assert span.end_s == end
        assert len(tracer.finished_spans()) == 1

    def test_exception_sets_error_attribute(self):
        tracer = Tracer()
        try:
            with tracer.span("boom") as span:
                raise ValueError("nope")
        except ValueError:
            pass
        assert span.attributes["error"] == "ValueError"
        assert span.finished

    def test_events_are_recorded_in_order(self):
        tracer = Tracer()
        with tracer.span("evented") as span:
            span.add_event("first", n=1)
            span.add_event("second")
        names = [name for _ts, name, _attrs in span.events]
        assert names == ["first", "second"]
        assert span.events[0][2] == {"n": 1}


class TestContextPropagation:
    def test_nesting_follows_the_thread_stack(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            assert tracer.current_span() is outer
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
            assert tracer.current_span() is outer
        assert tracer.current_span() is None

    def test_unentered_span_never_touches_the_stack(self):
        tracer = Tracer()
        with tracer.span("active") as active:
            orphan = tracer.span("manual", parent=None)
            # parent=None attaches to the current span but does NOT activate
            assert orphan.parent_id == active.span_id
            assert tracer.current_span() is active
            orphan.finish()
        assert {s.name for s in tracer.finished_spans()} == {"manual", "active"}

    def test_explicit_parent_crosses_threads(self):
        tracer = Tracer()
        child_ids = {}

        def worker(parent: SpanContext):
            with tracer.span("child", parent=parent) as child:
                child_ids["parent"] = child.parent_id
                child_ids["trace"] = child.trace_id

        with tracer.span("root") as root:
            thread = threading.Thread(target=worker, args=(root.context,))
            thread.start()
            thread.join()
        assert child_ids["parent"] == root.span_id
        assert child_ids["trace"] == root.trace_id

    def test_threads_do_not_inherit_context_implicitly(self):
        tracer = Tracer()
        seen = {}

        def worker():
            seen["current"] = tracer.current_span()

        with tracer.span("root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["current"] is None

    def test_sibling_traces_are_distinct(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.trace_id != b.trace_id


class TestTracerSurface:
    def test_ring_is_bounded(self):
        tracer = Tracer(keep_last=4)
        for index in range(10):
            tracer.span(f"s{index}").finish()
        names = [span.name for span in tracer.finished_spans()]
        assert names == ["s6", "s7", "s8", "s9"]

    def test_spans_for_trace_filters(self):
        tracer = Tracer()
        with tracer.span("keep") as keep:
            with tracer.span("keep.child"):
                pass
        with tracer.span("other"):
            pass
        spans = tracer.spans_for_trace(keep.trace_id)
        assert {s.name for s in spans} == {"keep", "keep.child"}

    def test_sink_errors_are_swallowed(self):
        class Bomb:
            def on_span(self, span):
                raise RuntimeError("sink died")

            def close(self):
                raise RuntimeError("close died")

        tracer = Tracer(sinks=[Bomb(), InMemorySink()])
        with tracer.span("survives"):
            pass
        tracer.close()  # must not raise
        assert len(tracer.finished_spans()) == 1

    def test_sink_errors_are_counted_per_stage(self):
        from repro.obs.metrics import MetricsRegistry, set_registry

        class Bomb:
            def on_span(self, span):
                raise RuntimeError("sink died")

            def close(self):
                raise RuntimeError("close died")

        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            tracer = Tracer(sinks=[Bomb()])
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
            tracer.close()
            counter = registry.get("repro_obs_sink_errors_total")
            assert counter is not None
            assert counter.value(stage="on_span") == 2.0
            assert counter.value(stage="close") == 1.0
        finally:
            set_registry(previous)

    def test_add_and_remove_sink_are_idempotent(self):
        sink = InMemorySink()
        tracer = Tracer(sinks=())
        tracer.add_sink(sink)
        tracer.add_sink(sink)
        assert tracer.sink_count == 1
        with tracer.span("seen"):
            pass
        assert [span.name for span in sink.spans] == ["seen"]
        tracer.remove_sink(sink)
        tracer.remove_sink(sink)
        assert tracer.sink_count == 0
        with tracer.span("unseen"):
            pass
        assert len(sink.spans) == 1


class TestNoopDefault:
    def test_default_tracer_is_noop(self):
        tracer = get_tracer()
        assert isinstance(tracer, NoopTracer)
        assert not tracer.enabled

    def test_noop_span_is_one_shared_object(self):
        tracer = NoopTracer()
        a = tracer.span("x", irrelevant=1)
        b = tracer.span("y", parent=SpanContext("t", "s"))
        assert a is b is NOOP_SPAN
        with a as entered:
            entered.set_attribute("k", "v")
            entered.add_event("e")
        assert a.attributes == {}
        assert tracer.current_span() is None
        assert tracer.current_context() is None
        assert tracer.finished_spans() == []

    def test_use_tracer_restores_previous(self):
        previous = get_tracer()
        replacement = Tracer()
        with use_tracer(replacement):
            assert get_tracer() is replacement
            with get_tracer().span("inside"):
                pass
        assert get_tracer() is previous
        assert [s.name for s in replacement.finished_spans()] == ["inside"]

    def test_real_span_type_under_real_tracer(self):
        with use_tracer(Tracer()) as tracer:
            span = tracer.span("typed")
            assert isinstance(span, Span)
            span.finish()
