"""Span exporters and the structured event log."""

import io
import json
import logging

from repro.obs.log import JsonFormatter, configure_logging, get_logger
from repro.obs.sinks import ChromeTraceSink, JsonLinesSink, span_to_dict
from repro.obs.trace import Tracer, use_tracer


class TestJsonLinesSink:
    def test_one_parseable_line_per_span(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        tracer = Tracer(sinks=[JsonLinesSink(path)])
        with tracer.span("outer", a=1):
            with tracer.span("inner"):
                pass
        tracer.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["name"] for line in lines] == ["inner", "outer"]
        outer = lines[1]
        assert outer["attributes"] == {"a": 1}
        assert lines[0]["parent_id"] == outer["span_id"]

    def test_non_json_attributes_fall_back_to_repr(self):
        tracer = Tracer()
        with tracer.span("odd", payload=object()) as span:
            pass
        document = span_to_dict(span)
        assert document["attributes"]["payload"].startswith("<object object")


class TestChromeTraceSink:
    def test_document_is_valid_and_complete(self, tmp_path):
        path = tmp_path / "trace.json"
        sink = ChromeTraceSink(path)
        tracer = Tracer(sinks=[sink])
        with tracer.span("subsystem.outer") as outer:
            outer.add_event("marker", note="hi")
            with tracer.span("subsystem.inner"):
                pass
        tracer.close()

        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"subsystem.outer", "subsystem.inner"}
        for event in complete:
            assert event["cat"] == "subsystem"
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert "trace_id" in event["args"] and "span_id" in event["args"]
        instants = [e for e in events if e["ph"] == "i"]
        assert [e["name"] for e in instants] == ["marker"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert metadata and metadata[0]["name"] == "thread_name"

    def test_close_is_idempotent(self, tmp_path):
        sink = ChromeTraceSink(tmp_path / "trace.json")
        sink.close()
        sink.close()


class TestStructuredLog:
    def test_get_logger_normalizes_namespace(self):
        assert get_logger("repro.reuse.linear").name == "repro.reuse.linear"
        assert get_logger("custom").name == "repro.custom"

    def test_kv_lines_carry_trace_correlation(self):
        stream = io.StringIO()
        handler = configure_logging(level=logging.DEBUG, stream=stream, fmt="kv")
        try:
            with use_tracer(Tracer()) as tracer:
                with tracer.span("traced") as span:
                    get_logger("repro.test").info('something "quoted" happened')
            line = stream.getvalue().strip()
            assert "level=INFO" in line
            assert "logger=repro.test" in line
            assert f"trace_id={span.trace_id}" in line
            assert f"span_id={span.span_id}" in line
            assert 'msg="something \'quoted\' happened"' in line
        finally:
            logging.getLogger("repro").removeHandler(handler)

    def test_json_lines_parse_and_correlate(self):
        stream = io.StringIO()
        handler = configure_logging(level=logging.INFO, stream=stream, fmt="json")
        try:
            with use_tracer(Tracer()) as tracer:
                with tracer.span("traced") as span:
                    get_logger("repro.test").warning("wat")
            document = json.loads(stream.getvalue().strip())
            assert document["level"] == "WARNING"
            assert document["msg"] == "wat"
            assert document["trace_id"] == span.trace_id
        finally:
            logging.getLogger("repro").removeHandler(handler)

    def test_no_correlation_fields_outside_spans(self):
        stream = io.StringIO()
        handler = configure_logging(level=logging.INFO, stream=stream, fmt="kv")
        try:
            get_logger("repro.test").info("plain")
            line = stream.getvalue().strip()
            assert "trace_id=" not in line
        finally:
            logging.getLogger("repro").removeHandler(handler)

    def test_configure_logging_replaces_not_stacks(self):
        stream = io.StringIO()
        configure_logging(stream=stream)
        handler = configure_logging(stream=stream)
        try:
            tagged = [
                h
                for h in logging.getLogger("repro").handlers
                if getattr(h, "_repro_obs_handler", False)
            ]
            assert len(tagged) == 1
        finally:
            logging.getLogger("repro").removeHandler(handler)

    def test_exception_is_rendered(self):
        import sys

        formatter = JsonFormatter()
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            record = logging.LogRecord(
                "repro.test",
                logging.ERROR,
                __file__,
                1,
                "failed",
                (),
                exc_info=sys.exc_info(),
            )
        document = json.loads(formatter.format(record))
        assert "RuntimeError: boom" in document["exc"]
