"""Metrics registry: instruments, percentiles, and both expositions."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    percentile,
    set_registry,
)
from repro.obs.trace import SpanContext, Tracer, use_tracer


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_element_returns_it(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.99) == 7.0
        assert percentile([7.0], 0.0) == 7.0

    def test_two_elements_interpolate(self):
        assert percentile([1.0, 2.0], 0.5) == pytest.approx(1.5)
        assert percentile([1.0, 2.0], 0.0) == 1.0
        assert percentile([1.0, 2.0], 1.0) == 2.0
        assert percentile([1.0, 2.0], 0.99) == pytest.approx(1.99)

    def test_matches_numpy_linear_interpolation(self):
        import numpy as np

        values = [0.1, 0.5, 1.0, 2.0, 9.0]
        for fraction in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert percentile(values, fraction) == pytest.approx(
                float(np.percentile(values, fraction * 100))
            )

    def test_fraction_is_clamped(self):
        assert percentile([1.0, 2.0], -1.0) == 1.0
        assert percentile([1.0, 2.0], 2.0) == 2.0


class TestCounter:
    def test_inc_and_total_across_labels(self):
        counter = Counter("c_total", "help", labelnames=("session",))
        counter.inc(session="a")
        counter.inc(2.5, session="b")
        assert counter.value(session="a") == 1.0
        assert counter.value(session="b") == 2.5
        assert counter.total() == 3.5

    def test_negative_increment_raises(self):
        counter = Counter("c_total", "")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_label_mismatch_raises(self):
        counter = Counter("c_total", "", labelnames=("session",))
        with pytest.raises(ValueError):
            counter.inc()
        with pytest.raises(ValueError):
            counter.inc(session="a", extra="b")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g", "")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value() == 6.0

    def test_set_max_keeps_running_maximum(self):
        gauge = Gauge("g", "")
        gauge.set_max(3)
        gauge.set_max(1)
        assert gauge.value() == 3.0
        gauge.set_max(9)
        assert gauge.value() == 9.0


class TestHistogram:
    def test_observe_fills_buckets_and_sum(self):
        hist = Histogram("h", "", buckets=(1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 50.0):
            hist.observe(value)
        [(labels, plain)] = hist.items()
        assert labels == {}
        assert plain["buckets"] == {"1.0": 2, "10.0": 1}
        assert plain["count"] == 4
        assert plain["sum"] == pytest.approx(56.2)

    def test_quantile_interpolates_within_bucket(self):
        hist = Histogram("h", "", buckets=(1.0, 2.0))
        for _ in range(10):
            hist.observe(1.5)
        estimate = hist.quantile(0.5)
        assert 1.0 <= estimate <= 2.0

    def test_quantile_empty_is_zero_and_inf_bucket_caps(self):
        hist = Histogram("h", "", buckets=(1.0,))
        assert hist.quantile(0.5) == 0.0
        hist.observe(100.0)  # +Inf bucket
        assert hist.quantile(0.99) == 1.0

    def test_needs_at_least_one_bucket(self):
        with pytest.raises(ValueError):
            Histogram("h", "", buckets=())

    def test_quantile_all_observations_in_inf_bucket(self):
        hist = Histogram("h", "", buckets=(1.0, 2.0))
        for _ in range(5):
            hist.observe(100.0)
        # everything beyond the last finite bound: the estimate caps there
        assert hist.quantile(0.5) == 2.0
        assert hist.quantile(0.99) == 2.0

    def test_quantile_single_observation(self):
        hist = Histogram("h", "", buckets=(1.0, 2.0))
        hist.observe(0.5)
        for fraction in (0.0, 0.5, 1.0):
            assert 0.0 <= hist.quantile(fraction) <= 1.0

    def test_quantile_labeled_series_are_isolated(self):
        hist = Histogram("h", "", labelnames=("op",), buckets=(1.0, 10.0))
        hist.observe(0.5, op="fast")
        hist.observe(9.0, op="slow")
        assert hist.quantile(0.5, op="fast") <= 1.0
        assert hist.quantile(0.5, op="slow") > 1.0
        # a series never observed reads as empty, not as its sibling
        assert hist.quantile(0.5, op="other") == 0.0

    def test_quantile_empty_labeled_series_is_zero(self):
        hist = Histogram("h", "", labelnames=("op",), buckets=(1.0,))
        assert hist.quantile(0.99, op="never") == 0.0


class TestHistogramExemplars:
    def test_explicit_exemplar_links_bucket_to_trace(self):
        hist = Histogram("h", "", buckets=(1.0, 10.0))
        hist.observe(0.5, exemplar=SpanContext("trace-a", "span-a"))
        exemplars = hist.exemplars()
        assert exemplars == {
            "1.0": {"value": 0.5, "trace_id": "trace-a", "span_id": "span-a"}
        }

    def test_inf_bucket_exemplar_keyed_plus_inf(self):
        hist = Histogram("h", "", buckets=(1.0,))
        hist.observe(50.0, exemplar=SpanContext("trace-b", "span-b"))
        assert hist.exemplars()["+Inf"]["trace_id"] == "trace-b"

    def test_last_exemplar_per_bucket_wins(self):
        hist = Histogram("h", "", buckets=(1.0,))
        hist.observe(0.2, exemplar=SpanContext("first", "s1"))
        hist.observe(0.3, exemplar=SpanContext("second", "s2"))
        assert hist.exemplars()["1.0"]["trace_id"] == "second"
        assert hist.exemplars()["1.0"]["value"] == 0.3

    def test_active_span_captured_automatically_when_tracing(self):
        hist = Histogram("h", "", buckets=(1.0,))
        with use_tracer(Tracer()) as tracer:
            with tracer.span("work") as span:
                hist.observe(0.5)
        assert hist.exemplars()["1.0"]["trace_id"] == span.trace_id
        assert hist.exemplars()["1.0"]["span_id"] == span.span_id

    def test_no_exemplar_when_tracing_off(self):
        hist = Histogram("h", "", buckets=(1.0,))
        hist.observe(0.5)  # default tracer is the noop
        assert hist.exemplars() == {}
        [(_labels, plain)] = hist.items()
        assert "exemplars" not in plain

    def test_exemplars_survive_snapshot(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_seconds", buckets=(1.0,))
        hist.observe(0.5, exemplar=SpanContext("trace-c", "span-c"))
        hist.observe(2.0)  # no trace: bucket counted, no exemplar
        [series] = registry.snapshot()["latency_seconds"]["series"]
        assert series["value"]["exemplars"] == {
            "1.0": {"value": 0.5, "trace_id": "trace-c", "span_id": "span-c"}
        }
        assert series["value"]["count"] == 2

    def test_exemplars_do_not_leak_across_labels(self):
        hist = Histogram("h", "", labelnames=("op",), buckets=(1.0,))
        hist.observe(0.5, exemplar=SpanContext("trace-d", "span-d"), op="plan")
        assert hist.exemplars(op="plan")["1.0"]["trace_id"] == "trace-d"
        assert hist.exemplars(op="commit") == {}

    def test_prometheus_rendering_unaffected_by_exemplars(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_seconds", buckets=(1.0,))
        hist.observe(0.5, exemplar=SpanContext("trace-e", "span-e"))
        text = registry.render_prometheus()
        assert 'latency_seconds_bucket{le="1.0"} 1' in text
        assert "trace-e" not in text


class TestRegistry:
    def test_getters_are_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "a counter")
        second = registry.counter("x_total")
        assert first is second

    def test_kind_or_label_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labelnames=("session",))
        with pytest.raises(ValueError):
            registry.gauge("x_total")
        with pytest.raises(ValueError):
            registry.counter("x_total", labelnames=("other",))

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "jobs", ("kind",)).inc(kind="merge")
        registry.gauge("depth").set(3)
        snapshot = registry.snapshot()
        assert snapshot["jobs_total"]["type"] == "counter"
        assert snapshot["jobs_total"]["series"] == [
            {"labels": {"kind": "merge"}, "value": 1.0}
        ]
        assert snapshot["depth"]["series"][0]["value"] == 3.0

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "jobs processed", ("kind",)).inc(kind="merge")
        hist = registry.histogram("latency_seconds", "latency", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        text = registry.render_prometheus()
        assert "# HELP jobs_total jobs processed" in text
        assert "# TYPE jobs_total counter" in text
        assert 'jobs_total{kind="merge"} 1' in text
        assert "# TYPE latency_seconds histogram" in text
        # cumulative buckets: 1 at le=0.1, 2 at le=1.0 and +Inf
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="1.0"} 2' in text
        assert 'latency_seconds_bucket{le="+Inf"} 2' in text
        assert "latency_seconds_count 2" in text
        assert text.endswith("\n")

    def test_global_registry_swap(self):
        previous = get_registry()
        replacement = MetricsRegistry()
        assert set_registry(replacement) is previous
        try:
            assert get_registry() is replacement
        finally:
            set_registry(previous)
