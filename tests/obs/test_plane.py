"""Flight recorder: tail-based sampling, bounds, and tracer attachment."""

import zlib

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.plane import (
    FlightRecorder,
    install_recorder,
    perfetto_document,
    uninstall_recorder,
)
from repro.obs.trace import NoopTracer, SpanContext, Tracer, get_tracer, use_tracer


def recorded_tracer(**kwargs) -> tuple[Tracer, FlightRecorder]:
    recorder = FlightRecorder(**kwargs)
    return Tracer(sinks=[recorder]), recorder


class TestTailDecisions:
    def test_slow_root_is_kept(self):
        tracer, recorder = recorded_tracer(
            slow_threshold_s=0.0, head_sample_every=0
        )
        with tracer.span("request"):
            pass
        [kept] = recorder.kept_traces()
        assert kept["decision"] == "slow"
        assert kept["root"] == "request"
        assert recorder.stats()["decisions"]["slow"] == 1

    def test_errored_trace_is_kept_even_when_fast(self):
        tracer, recorder = recorded_tracer(
            slow_threshold_s=1e9, head_sample_every=0
        )
        try:
            with tracer.span("request"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        except ValueError:
            pass
        [kept] = recorder.kept_traces()
        assert kept["decision"] == "error"
        assert kept["spans"] == 2

    def test_shed_span_name_wins_over_error(self):
        tracer, recorder = recorded_tracer(
            slow_threshold_s=1e9, head_sample_every=0
        )
        with tracer.span("request") as root:
            tracer.span("transport.shed", parent=root.context).finish()
        [kept] = recorder.kept_traces()
        assert kept["decision"] == "shed"

    def test_admission_error_attribute_classifies_as_shed(self):
        tracer, recorder = recorded_tracer(
            slow_threshold_s=1e9, head_sample_every=0
        )
        with tracer.span("request") as root:
            root.set_attribute("error", "QuotaExceededError")
        [kept] = recorder.kept_traces()
        assert kept["decision"] == "shed"

    def test_fast_healthy_trace_is_dropped_without_sampling(self):
        tracer, recorder = recorded_tracer(
            slow_threshold_s=1e9, head_sample_every=0
        )
        with tracer.span("request"):
            pass
        assert recorder.kept_traces() == []
        stats = recorder.stats()
        assert stats["decisions"]["dropped"] == 1
        assert stats["kept_total"] == 0

    def test_head_sampling_is_deterministic_crc32(self):
        every = 4
        tracer, recorder = recorded_tracer(
            slow_threshold_s=1e9, head_sample_every=every
        )
        for index in range(64):
            tracer.span(f"request-{index}").finish()
        kept_ids = {t["trace_id"] for t in recorder.kept_traces(limit=None)}
        for span in tracer.finished_spans():
            expected = zlib.crc32(span.trace_id.encode()) % every == 0
            assert (span.trace_id in kept_ids) == expected

    def test_head_sample_every_one_keeps_everything(self):
        tracer, recorder = recorded_tracer(
            slow_threshold_s=1e9, head_sample_every=1
        )
        for _ in range(5):
            tracer.span("request").finish()
        assert recorder.stats()["decisions"]["sampled"] == 5

    def test_negative_sampling_rate_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(head_sample_every=-1)


class TestBounds:
    def test_span_cap_drops_children_but_roots_always_enter(self):
        tracer, recorder = recorded_tracer(
            slow_threshold_s=0.0, head_sample_every=0, max_spans_per_trace=2
        )
        with tracer.span("root"):
            for index in range(3):
                with tracer.span(f"child-{index}"):
                    pass
        [kept] = recorder.kept_traces()
        # 2 buffered children + the root (always admitted), 1 overflowed
        assert kept["spans"] == 3
        assert kept["dropped_spans"] == 1
        assert recorder.stats()["span_overflow"] == 1

    def test_lru_eviction_still_decides_the_evicted_trace(self):
        tracer, recorder = recorded_tracer(
            slow_threshold_s=0.0, head_sample_every=0, max_traces=2
        )
        # remote-rooted spans: parents never arrive, buffers linger
        for index in range(3):
            tracer.span(
                "server.work", parent=SpanContext(f"trace-{index}", "remote")
            ).finish()
        stats = recorder.stats()
        assert stats["evicted_traces"] == 1
        assert stats["decisions"]["slow"] == 1  # evicted one got a decision
        assert stats["buffered_traces"] == 2

    def test_kept_ring_is_bounded_and_newest_first(self):
        tracer, recorder = recorded_tracer(
            slow_threshold_s=0.0, head_sample_every=0, keep_last=3
        )
        for index in range(6):
            tracer.span(f"request-{index}").finish()
        kept = recorder.kept_traces()
        assert [t["root"] for t in kept] == [
            "request-5",
            "request-4",
            "request-3",
        ]
        assert recorder.kept_traces(limit=1)[0]["root"] == "request-5"

    def test_stale_flush_finalizes_remote_rooted_traces(self):
        tracer, recorder = recorded_tracer(
            slow_threshold_s=0.0, head_sample_every=0
        )
        tracer.span("server.only", parent=SpanContext("remote-1", "s")).finish()
        assert recorder.stats()["buffered_traces"] == 1
        assert recorder.flush_stale() == 0  # too young for the default age
        assert recorder.flush_stale(max_age_s=0.0) == 1
        [kept] = recorder.kept_traces()
        assert kept["root"] == "server.only"

    def test_close_flushes_everything(self):
        tracer, recorder = recorded_tracer(
            slow_threshold_s=0.0, head_sample_every=0
        )
        tracer.span("pending", parent=SpanContext("remote-2", "s")).finish()
        recorder.close()
        assert recorder.stats()["buffered_traces"] == 0
        assert recorder.stats()["decisions"]["slow"] == 1


class TestReadSurface:
    def test_trace_returns_span_dicts_sorted_by_start(self):
        tracer, recorder = recorded_tracer(
            slow_threshold_s=0.0, head_sample_every=0
        )
        with tracer.span("root") as root:
            with tracer.span("child"):
                pass
        spans = recorder.trace(root.trace_id)
        assert [s["name"] for s in spans] == ["root", "child"]
        assert spans[0]["parent_id"] is None
        assert spans[1]["parent_id"] == root.span_id

    def test_unknown_trace_raises_key_error(self):
        recorder = FlightRecorder()
        with pytest.raises(KeyError):
            recorder.trace("no-such-trace")

    def test_slowest_spans_rank_by_self_time(self):
        tracer, recorder = recorded_tracer(
            slow_threshold_s=0.0, head_sample_every=0
        )
        with tracer.span("root") as root:
            with tracer.span("child"):
                pass
        rows = recorder.slowest_spans()
        assert {row["name"] for row in rows} == {"root", "child"}
        root_row = next(row for row in rows if row["name"] == "root")
        child_row = next(row for row in rows if row["name"] == "child")
        # the child's time is subtracted from the root's self time
        assert root_row["self_s"] <= root.duration_s
        assert child_row["self_s"] == pytest.approx(child_row["duration_s"])
        assert all(row["decision"] == "slow" for row in rows)

    def test_registry_instruments_mirror_decisions(self):
        registry = MetricsRegistry()
        recorder = FlightRecorder(
            slow_threshold_s=0.0, head_sample_every=0, registry=registry
        )
        tracer = Tracer(sinks=[recorder])
        with tracer.span("request"):
            pass
        counter = registry.get("repro_obs_recorder_traces_total")
        assert counter.value(decision="slow") == 1.0
        assert registry.get("repro_obs_recorder_spans_total").total() == 1.0
        assert registry.get("repro_obs_recorder_buffered_traces").value() == 0.0


class TestPerfettoExport:
    def test_document_shape(self):
        tracer, recorder = recorded_tracer(
            slow_threshold_s=0.0, head_sample_every=0
        )
        with tracer.span("transport.request", op="plan") as root:
            root.add_event("decoded", frames=2)
            with tracer.span("service.plan"):
                pass
        document = recorder.export_perfetto(root.trace_id)
        phases = [event["ph"] for event in document["traceEvents"]]
        assert phases.count("M") == 1  # one thread-name metadata row
        assert phases.count("X") == 2  # two complete spans
        assert phases.count("i") == 1  # the span event as an instant
        request = next(
            e
            for e in document["traceEvents"]
            if e["ph"] == "X" and e["name"] == "transport.request"
        )
        assert request["cat"] == "transport"
        assert request["args"]["op"] == "plan"
        assert request["args"]["trace_id"] == root.trace_id
        assert document["displayTimeUnit"] == "ms"

    def test_document_accepts_plain_dicts(self):
        document = perfetto_document(
            [{"name": "x", "start_s": 1.0, "duration_s": 0.5, "thread": "t"}]
        )
        events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert events[0]["ts"] == pytest.approx(1e6)
        assert events[0]["dur"] == pytest.approx(5e5)


class TestInstallation:
    def test_install_enables_tracing_and_uninstall_restores_noop(self):
        assert isinstance(get_tracer(), NoopTracer)
        recorder = FlightRecorder(slow_threshold_s=0.0, head_sample_every=0)
        install_recorder(recorder)
        try:
            assert get_tracer().enabled
            with get_tracer().span("auto"):
                pass
            assert recorder.stats()["decisions"]["slow"] == 1
        finally:
            uninstall_recorder(recorder)
        assert isinstance(get_tracer(), NoopTracer)

    def test_two_recorders_share_the_auto_tracer(self):
        first = FlightRecorder(slow_threshold_s=0.0, head_sample_every=0)
        second = FlightRecorder(slow_threshold_s=0.0, head_sample_every=0)
        install_recorder(first)
        install_recorder(second)
        try:
            tracer = get_tracer()
            assert tracer.sink_count == 2
            uninstall_recorder(first)
            assert get_tracer() is tracer  # still alive for the second
        finally:
            uninstall_recorder(second)
        assert isinstance(get_tracer(), NoopTracer)

    def test_install_onto_an_existing_tracer_leaves_it_installed(self):
        user_tracer = Tracer()
        recorder = FlightRecorder(slow_threshold_s=0.0, head_sample_every=0)
        with use_tracer(user_tracer):
            install_recorder(recorder)
            assert get_tracer() is user_tracer
            with user_tracer.span("shared"):
                pass
            uninstall_recorder(recorder)
            assert get_tracer() is user_tracer
            assert user_tracer.sink_count == 0
        assert recorder.stats()["decisions"]["slow"] == 1

    def test_install_is_idempotent(self):
        recorder = FlightRecorder()
        install_recorder(recorder)
        install_recorder(recorder)
        try:
            assert get_tracer().sink_count == 1
        finally:
            uninstall_recorder(recorder)
        assert isinstance(get_tracer(), NoopTracer)
