"""Profile reports: self-time aggregation and trace-subtree selection."""

import pytest

from repro.obs.profile import ProfileReport
from repro.obs.trace import Tracer


def _span(tracer, name, start, end, parent=None):
    span = tracer.span(name, parent=parent)
    span.start_s = start
    span.end_s = end
    tracer._record(span)
    return span


class TestFromSpans:
    def test_self_time_excludes_direct_children(self):
        tracer = Tracer()
        parent = _span(tracer, "parent", 0.0, 1.0)
        _span(tracer, "child", 0.1, 0.4, parent=parent)
        _span(tracer, "child", 0.5, 0.9, parent=parent)
        report = ProfileReport.from_spans(tracer.finished_spans())

        by_name = {entry.name: entry for entry in report.entries}
        assert by_name["parent"].total_s == pytest.approx(1.0)
        assert by_name["parent"].self_s == pytest.approx(0.3)  # 1.0 - 0.3 - 0.4
        assert by_name["child"].count == 2
        assert by_name["child"].self_s == pytest.approx(0.7)
        assert report.span_count == 3

    def test_self_time_clamped_at_zero(self):
        tracer = Tracer()
        parent = _span(tracer, "parent", 0.0, 0.1)
        _span(tracer, "child", 0.0, 0.5, parent=parent)  # overlapping clock skew
        report = ProfileReport.from_spans(tracer.finished_spans())
        by_name = {entry.name: entry for entry in report.entries}
        assert by_name["parent"].self_s == 0.0

    def test_sorted_by_self_time_and_top_k(self):
        tracer = Tracer()
        _span(tracer, "small", 0.0, 0.1)
        _span(tracer, "big", 0.0, 2.0)
        _span(tracer, "medium", 0.0, 1.0)
        report = ProfileReport.from_spans(tracer.finished_spans(), top_k=2)
        assert [entry.name for entry in report.entries] == ["big", "medium"]

    def test_unfinished_spans_are_ignored(self):
        tracer = Tracer()
        open_span = tracer.span("open")
        report = ProfileReport.from_spans([open_span])
        assert report.span_count == 0


class TestFromTrace:
    def test_selects_only_the_root_subtree(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
        with tracer.span("unrelated"):
            pass
        report = ProfileReport.from_trace(tracer, root)
        names = {entry.name for entry in report.entries}
        assert names == {"root", "child", "grandchild"}

    def test_render_is_tabular(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            pass
        report = ProfileReport.from_trace(tracer, root)
        rendered = report.render()
        assert rendered.splitlines()[0].startswith("span")
        assert "root" in rendered
        assert report.top(1)[0].name == "root"
