"""Tests for the EG-driven pipeline/hyperparameter advisor."""

import numpy as np
import pytest

from repro.automl import PipelineAdvisor
from repro.materialization import MaterializeAll
from repro.server.service import CollaborativeOptimizer
from repro.workloads.openml import make_pipeline_script, sample_pipeline_specs


@pytest.fixture(scope="module")
def populated_optimizer(tiny_credit_g):
    co = CollaborativeOptimizer(MaterializeAll())
    for spec in sample_pipeline_specs(20, seed=4):
        co.run_script(make_pipeline_script(spec), tiny_credit_g)
    return co


class TestBestModels:
    def test_ranked_by_quality(self, populated_optimizer):
        advisor = PipelineAdvisor(populated_optimizer.eg)
        models = advisor.best_models(k=5)
        qualities = [m.quality for m in models]
        assert qualities == sorted(qualities, reverse=True)
        assert len(models) == 5

    def test_model_type_filter(self, populated_optimizer):
        advisor = PipelineAdvisor(populated_optimizer.eg)
        models = advisor.best_models(model_type="GradientBoostingClassifier", k=20)
        assert models
        assert all(m.meta.model_type == "GradientBoostingClassifier" for m in models)

    def test_source_filter(self, populated_optimizer):
        advisor = PipelineAdvisor(populated_optimizer.eg)
        assert advisor.best_models(source_name="openml_train", k=3)
        assert advisor.best_models(source_name="no_such_dataset") == []


class TestDescribePipeline:
    def test_chain_reconstruction(self, populated_optimizer):
        advisor = PipelineAdvisor(populated_optimizer.eg)
        best = advisor.best_models(k=1)[0]
        steps = advisor.describe_pipeline(best.vertex_id)
        assert steps
        assert steps[-1].op_name == "fit"  # the chain ends at the trainer
        assert "model_type" in steps[-1].op_params

    def test_steps_in_execution_order(self, populated_optimizer):
        advisor = PipelineAdvisor(populated_optimizer.eg)
        best = advisor.best_models(k=1)[0]
        steps = advisor.describe_pipeline(best.vertex_id)
        fit_positions = [i for i, s in enumerate(steps) if s.op_name == "fit"]
        transform_positions = [
            i for i, s in enumerate(steps) if s.op_name == "transform"
        ]
        # any transform of the winning model's features precedes its fit
        if transform_positions:
            assert min(transform_positions) < max(fit_positions)

    def test_unknown_vertex_rejected(self, populated_optimizer):
        advisor = PipelineAdvisor(populated_optimizer.eg)
        with pytest.raises(KeyError):
            advisor.describe_pipeline("nope")

    def test_describe_best_pipeline_convenience(self, populated_optimizer):
        advisor = PipelineAdvisor(populated_optimizer.eg)
        steps = advisor.describe_best_pipeline(source_name="openml_train")
        assert steps
        assert advisor.describe_best_pipeline(source_name="missing") == []

    def test_step_rendering(self, populated_optimizer):
        advisor = PipelineAdvisor(populated_optimizer.eg)
        steps = advisor.describe_best_pipeline()
        rendered = str(steps[-1])
        assert rendered.startswith("fit(")


class TestHyperparameterSuggestions:
    def test_observed_configurations_ranked(self, populated_optimizer):
        advisor = PipelineAdvisor(populated_optimizer.eg)
        rows = advisor.observed_configurations("GradientBoostingClassifier")
        assert rows
        qualities = [q for _p, q in rows]
        assert qualities == sorted(qualities, reverse=True)

    def test_suggestions_include_neighbours(self, populated_optimizer):
        advisor = PipelineAdvisor(populated_optimizer.eg)
        suggestions = advisor.suggest_hyperparameters("GradientBoostingClassifier")
        origins = {s.origin for s in suggestions}
        assert "observed" in origins
        assert "neighbour" in origins

    def test_neighbours_not_already_tried(self, populated_optimizer):
        advisor = PipelineAdvisor(populated_optimizer.eg)
        tried = {
            advisor._freeze(p)
            for p, _q in advisor.observed_configurations("GradientBoostingClassifier")
        }
        for suggestion in advisor.suggest_hyperparameters("GradientBoostingClassifier"):
            if suggestion.origin == "neighbour":
                assert advisor._freeze(suggestion.params) not in tried

    def test_neighbours_perturb_one_numeric_param(self, populated_optimizer):
        advisor = PipelineAdvisor(populated_optimizer.eg)
        observed = advisor.observed_configurations("GradientBoostingClassifier")
        best = observed[0][0]
        for suggestion in advisor.suggest_hyperparameters("GradientBoostingClassifier"):
            if suggestion.origin != "neighbour":
                continue
            differing = [
                k for k in best if repr(suggestion.params[k]) != repr(best[k])
            ]
            assert len(differing) == 1

    def test_unknown_model_type_empty(self, populated_optimizer):
        advisor = PipelineAdvisor(populated_optimizer.eg)
        assert advisor.suggest_hyperparameters("NoSuchModel") == []
