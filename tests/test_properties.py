"""Property-based tests (hypothesis) for core data structures and invariants.

The heavyweight properties are the planner ones: on random DAGs with random
costs, the linear-time reuse plan must cost exactly what the Helix min-cut
plan costs (both are optimal), and no more than either trivial baseline.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dataframe import Column, DataFrame, derive_column_id
from repro.eg.graph import ExperimentGraph
from repro.eg.storage import DedupArtifactStore, LoadCostModel
from repro.graph.artifacts import payload_size_bytes
from repro.graph.dag import WorkloadDAG
from repro.graph.operations import DataOperation, operation_hash
from repro.materialization import HeuristicMaterializer, StorageAwareMaterializer
from repro.ml import StandardScaler, accuracy_score, roc_auc_score
from repro.reuse import AllMaterializedReuse, HelixReuse, LinearReuse, NoReuse
from repro.reuse.maxflow import FlowNetwork

SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

# ----------------------------------------------------------------------
# DataFrame invariants
# ----------------------------------------------------------------------
column_values = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=30
)


@st.composite
def frames(draw):
    n_rows = draw(st.integers(min_value=1, max_value=20))
    n_cols = draw(st.integers(min_value=1, max_value=5))
    columns = []
    for j in range(n_cols):
        values = draw(
            st.lists(
                st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                min_size=n_rows,
                max_size=n_rows,
            )
        )
        columns.append(Column(f"c{j}", np.asarray(values)))
    return DataFrame(columns)


class TestFrameProperties:
    @SETTINGS
    @given(frames())
    def test_select_all_is_identity(self, frame):
        assert frame.select(frame.columns) == frame

    @SETTINGS
    @given(frames())
    def test_projection_preserves_lineage(self, frame):
        projected = frame.select(frame.columns[:1])
        assert projected.column_ids[frame.columns[0]] == frame.column_ids[frame.columns[0]]

    @SETTINGS
    @given(frames(), st.integers(min_value=0, max_value=100))
    def test_sample_bounded_and_deterministic(self, frame, seed):
        n = min(3, frame.num_rows)
        a = frame.sample(n, random_state=seed)
        b = frame.sample(n, random_state=seed)
        assert a == b
        assert a.num_rows == n

    @SETTINGS
    @given(frames())
    def test_concat_rows_with_self_doubles(self, frame):
        tall = DataFrame.concat_rows([frame, frame])
        assert tall.num_rows == 2 * frame.num_rows
        assert tall.columns == frame.columns

    @SETTINGS
    @given(frames())
    def test_filter_true_keeps_all_rows_new_ids(self, frame):
        kept = frame.filter(lambda f: np.ones(f.num_rows, dtype=bool), "all")
        assert kept.num_rows == frame.num_rows
        assert all(
            kept.column_ids[c] != frame.column_ids[c] for c in frame.columns
        )

    @SETTINGS
    @given(frames())
    def test_nbytes_additive_over_columns(self, frame):
        total = sum(frame.column(c).nbytes for c in frame.columns)
        assert frame.nbytes == total

    @SETTINGS
    @given(column_values)
    def test_groupby_sum_preserves_total(self, values):
        n = len(values)
        keys = np.arange(n) % 3
        frame = DataFrame({"k": keys, "v": np.asarray(values)})
        grouped = frame.groupby_agg("k", {"v": "sum"})
        assert grouped.values("v_sum").sum() == pytest.approx(np.sum(values), rel=1e-9)


class TestLineageProperties:
    @SETTINGS
    @given(st.text(min_size=1, max_size=20), st.text(min_size=1, max_size=20))
    def test_derive_deterministic(self, op, col):
        assert derive_column_id(op, col) == derive_column_id(op, col)

    @SETTINGS
    @given(
        st.text(min_size=1, max_size=10),
        st.dictionaries(
            st.text(min_size=1, max_size=5),
            st.integers(min_value=-100, max_value=100),
            max_size=4,
        ),
    )
    def test_operation_hash_param_order_free(self, name, params):
        reordered = dict(reversed(list(params.items())))
        assert operation_hash(name, params) == operation_hash(name, reordered)


# ----------------------------------------------------------------------
# Store invariants
# ----------------------------------------------------------------------
@st.composite
def overlapping_frames(draw):
    """Frames sharing lineage ids drawn from a small pool."""
    pool = [f"lineage{i}" for i in range(6)]
    n_frames = draw(st.integers(min_value=1, max_value=4))
    out = []
    for f in range(n_frames):
        ids = draw(
            st.lists(st.sampled_from(pool), min_size=1, max_size=4, unique=True)
        )
        columns = [Column(f"c{j}", np.zeros(8), cid) for j, cid in enumerate(ids)]
        out.append((f"vertex{f}", DataFrame(columns)))
    return out


class TestDedupStoreProperties:
    @SETTINGS
    @given(overlapping_frames())
    def test_physical_never_exceeds_logical(self, payloads):
        store = DedupArtifactStore()
        for vertex_id, frame in payloads:
            store.put(vertex_id, frame)
        assert store.total_bytes <= store.logical_bytes

    @SETTINGS
    @given(overlapping_frames())
    def test_get_roundtrip(self, payloads):
        store = DedupArtifactStore()
        for vertex_id, frame in payloads:
            store.put(vertex_id, frame)
        for vertex_id, frame in payloads:
            assert store.get(vertex_id) == frame

    @SETTINGS
    @given(overlapping_frames())
    def test_remove_all_releases_everything(self, payloads):
        store = DedupArtifactStore()
        for vertex_id, frame in payloads:
            store.put(vertex_id, frame)
        for vertex_id, _ in payloads:
            store.remove(vertex_id)
        assert store.total_bytes == 0
        assert store.vertex_ids == set()

    @SETTINGS
    @given(overlapping_frames())
    def test_incremental_size_matches_actual(self, payloads):
        store = DedupArtifactStore()
        predicted = store.incremental_size(payloads)
        actual = sum(store.put(vertex_id, frame) for vertex_id, frame in payloads)
        assert predicted == actual


# ----------------------------------------------------------------------
# Planner optimality properties on random DAGs
# ----------------------------------------------------------------------
class _NoOp(DataOperation):
    def __init__(self, index: int):
        super().__init__("noop", params={"i": index})

    def run(self, underlying_data):
        return underlying_data


@st.composite
def planning_instances(draw):
    """Random workload DAG + EG with random costs/material flags."""
    n_nodes = draw(st.integers(min_value=3, max_value=25))
    rng_seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(rng_seed)
    dag = WorkloadDAG()
    ids = [dag.add_source(f"s{rng_seed}")]
    for index in range(n_nodes):
        k = int(rng.integers(1, min(3, len(ids)) + 1))
        parents = list(rng.choice(len(ids), size=k, replace=False))
        out = dag.add_operation([ids[p] for p in sorted(parents)], _NoOp(index))
        ids.append(out)
    for vertex in dag.artifact_vertices():
        if dag.graph.out_degree(vertex.vertex_id) == 0:
            dag.mark_terminal(vertex.vertex_id)
    eg = ExperimentGraph()
    eg.union_workload(dag)
    for record in eg.artifact_vertices():
        if record.is_source:
            continue
        record.compute_time = float(rng.uniform(0.1, 10.0))
        record.size = int(rng.integers(1, 20))
        if rng.random() < 0.5:
            record.materialized = True
    return dag, eg


UNIT_LOAD = LoadCostModel(bandwidth_bytes_per_s=1.0, latency_s=0.0)


@st.composite
def chain_planning_instances(draw):
    """Chain-shaped instances, where the linear algorithm is exactly optimal.

    No vertex is consumed by more than one child, so the forward pass's
    per-parent cost sums cannot double-count a shared ancestor.
    """
    n_nodes = draw(st.integers(min_value=2, max_value=20))
    rng_seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(rng_seed)
    dag = WorkloadDAG()
    current = dag.add_source(f"chain{rng_seed}")
    for index in range(n_nodes):
        current = dag.add_operation([current], _NoOp(index))
    dag.mark_terminal(current)
    eg = ExperimentGraph()
    eg.union_workload(dag)
    for record in eg.artifact_vertices():
        if record.is_source:
            continue
        record.compute_time = float(rng.uniform(0.1, 10.0))
        record.size = int(rng.integers(1, 20))
        if rng.random() < 0.5:
            record.materialized = True
    return dag, eg


class TestPlannerProperties:
    @SETTINGS
    @given(planning_instances())
    def test_helix_mincut_is_never_worse(self, instance):
        """The min-cut plan is globally optimal; LN is an upper bound.

        The two differ only on diamond instances where a load decision's
        benefit is double-counted by LN's forward pass (see the
        reproduction note in repro/reuse/linear.py).
        """
        dag, eg = instance
        plan_ln = LinearReuse(UNIT_LOAD).plan(dag, eg)
        plan_hl = HelixReuse(UNIT_LOAD).plan(dag, eg)
        assert plan_hl.estimated_cost <= plan_ln.estimated_cost + 1e-9

    @SETTINGS
    @given(chain_planning_instances())
    def test_linear_matches_helix_on_chains(self, instance):
        dag, eg = instance
        plan_ln = LinearReuse(UNIT_LOAD).plan(dag, eg)
        plan_hl = HelixReuse(UNIT_LOAD).plan(dag, eg)
        assert plan_ln.estimated_cost == pytest.approx(plan_hl.estimated_cost)
        assert plan_ln.loads == plan_hl.loads

    @SETTINGS
    @given(planning_instances())
    def test_helix_never_worse_than_baselines(self, instance):
        dag, eg = instance
        optimal = HelixReuse(UNIT_LOAD).plan(dag, eg)
        for baseline in (AllMaterializedReuse(UNIT_LOAD), NoReuse(UNIT_LOAD)):
            plan = baseline.plan(dag, eg)
            cost = plan.plan_cost(dag, eg, UNIT_LOAD)
            assert optimal.estimated_cost <= cost + 1e-9

    @SETTINGS
    @given(chain_planning_instances())
    def test_linear_never_worse_than_baselines_on_chains(self, instance):
        dag, eg = instance
        plan = LinearReuse(UNIT_LOAD).plan(dag, eg)
        for baseline in (AllMaterializedReuse(UNIT_LOAD), NoReuse(UNIT_LOAD)):
            cost = baseline.plan(dag, eg).plan_cost(dag, eg, UNIT_LOAD)
            assert plan.estimated_cost <= cost + 1e-9

    @SETTINGS
    @given(planning_instances())
    def test_loads_are_materialized_vertices(self, instance):
        dag, eg = instance
        plan = LinearReuse(UNIT_LOAD).plan(dag, eg)
        assert all(eg.is_materialized(v) for v in plan.loads)

    @SETTINGS
    @given(planning_instances())
    def test_execution_set_disjoint_from_loads(self, instance):
        dag, eg = instance
        plan = LinearReuse(UNIT_LOAD).plan(dag, eg)
        assert not plan.loads & plan.execution_set(dag)


# ----------------------------------------------------------------------
# Materializer budget invariants
# ----------------------------------------------------------------------
@st.composite
def materialization_instances(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    budget = draw(st.integers(min_value=0, max_value=4000))
    rng = np.random.default_rng(seed)
    dag = WorkloadDAG()
    current = dag.add_source("src", payload=DataFrame({"x": np.zeros(2)}))
    available = {}
    pool = [f"shared{i}" for i in range(5)]
    for index in range(int(rng.integers(2, 8))):
        current = dag.add_operation([current], _NoOp(index))
        ids = list(rng.choice(pool, size=int(rng.integers(1, 4)), replace=False))
        payload = DataFrame([Column(f"c{j}", np.zeros(16), cid) for j, cid in enumerate(ids)])
        dag.vertex(current).record_result(payload, compute_time=float(rng.uniform(1, 5)))
        available[current] = payload
    dag.mark_terminal(current)
    eg = ExperimentGraph()
    eg.union_workload(dag)
    return eg, available, budget


FAST_LOAD = LoadCostModel(bandwidth_bytes_per_s=1e12, latency_s=0.0)


class TestMaterializerProperties:
    @SETTINGS
    @given(materialization_instances())
    def test_hm_logical_budget_respected(self, instance):
        eg, available, budget = instance
        selected = HeuristicMaterializer(budget, load_cost_model=FAST_LOAD).select(
            eg, available
        )
        total = sum(payload_size_bytes(available[v]) for v in selected)
        assert total <= budget

    @SETTINGS
    @given(materialization_instances())
    def test_sa_physical_budget_respected(self, instance):
        eg, available, budget = instance
        selected = StorageAwareMaterializer(budget, load_cost_model=FAST_LOAD).select(
            eg, available
        )
        store = DedupArtifactStore()
        physical = sum(store.put(v, available[v]) for v in selected)
        assert physical <= budget

    @SETTINGS
    @given(materialization_instances())
    def test_sa_selects_superset_of_nothing_with_zero_budget(self, instance):
        eg, available, _budget = instance
        selected = StorageAwareMaterializer(0, load_cost_model=FAST_LOAD).select(
            eg, available
        )
        assert selected == set()

    @SETTINGS
    @given(materialization_instances())
    def test_selection_subset_of_available(self, instance):
        eg, available, budget = instance
        for strategy in (
            HeuristicMaterializer(budget, load_cost_model=FAST_LOAD),
            StorageAwareMaterializer(budget, load_cost_model=FAST_LOAD),
        ):
            assert strategy.select(eg, available) <= set(available)


# ----------------------------------------------------------------------
# Max-flow against networkx
# ----------------------------------------------------------------------
@st.composite
def flow_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=1, max_value=20),
            ),
            min_size=1,
            max_size=16,
        )
    )
    return n, [(u, v, c) for u, v, c in edges if u != v]


class TestMaxFlowProperties:
    @SETTINGS
    @given(flow_graphs())
    def test_matches_networkx(self, graph):
        import networkx as nx

        n, edges = graph
        ours = FlowNetwork()
        reference = nx.DiGraph()
        for u, v, c in edges:
            ours.add_edge(u, v, float(c))
        for u, v, c in edges:
            if reference.has_edge(u, v):
                reference[u][v]["capacity"] += c
            else:
                reference.add_edge(u, v, capacity=c)
        reference.add_node(0)
        reference.add_node(n - 1)
        expected = (
            nx.maximum_flow_value(reference, 0, n - 1)
            if reference.has_node(0) and reference.has_node(n - 1)
            else 0.0
        )
        assert ours.max_flow(0, n - 1) == pytest.approx(float(expected))


# ----------------------------------------------------------------------
# Metric and scaler properties
# ----------------------------------------------------------------------
class TestExtendedFrameProperties:
    @SETTINGS
    @given(frames(), st.floats(min_value=-100, max_value=100))
    def test_clip_bounds_respected(self, frame, bound):
        name = frame.columns[0]
        clipped = frame.clip_column(name, upper=bound)
        assert clipped.values(name).max() <= max(bound, frame.values(name).min())

    @SETTINGS
    @given(frames())
    def test_cut_assigns_every_row_a_bin(self, frame):
        name = frame.columns[0]
        out = frame.cut_column(name, bins=[-1e7, 0.0, 1e7])
        bins = out.values(f"{name}_bin")
        assert set(np.unique(bins)) <= {0, 1}
        assert len(bins) == frame.num_rows

    @SETTINGS
    @given(frames())
    def test_value_counts_total(self, frame):
        name = frame.columns[0]
        counts = frame.value_counts(name)
        assert counts.values("count").sum() == frame.num_rows

    @SETTINGS
    @given(frames())
    def test_drop_duplicates_idempotent(self, frame):
        once = frame.drop_duplicates()
        twice = once.drop_duplicates()
        assert once.num_rows == twice.num_rows

    @SETTINGS
    @given(column_values)
    def test_multikey_groupby_preserves_sum(self, values):
        n = len(values)
        frame = DataFrame(
            {
                "k1": np.arange(n) % 2,
                "k2": np.arange(n) % 3,
                "v": np.asarray(values),
            }
        )
        grouped = frame.groupby_agg(["k1", "k2"], {"v": "sum"})
        assert grouped.values("v_sum").sum() == pytest.approx(np.sum(values), rel=1e-9)


class TestKMeansProperties:
    @SETTINGS
    @given(
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=0, max_value=500),
    )
    def test_invariants(self, k, seed):
        from repro.ml import KMeans

        rng = np.random.default_rng(seed)
        X = rng.normal(size=(30, 3))
        model = KMeans(n_clusters=k, random_state=seed).fit(X)
        assert model.labels_.min() >= 0 and model.labels_.max() < k
        assert model.inertia_ >= 0.0
        # predict agrees with the nearest column of transform
        distances = model.transform(X)
        assert np.array_equal(np.argmin(distances, axis=1), model.predict(X))


class TestMetricProperties:
    @SETTINGS
    @given(
        st.lists(st.booleans(), min_size=4, max_size=50).filter(
            lambda labels: 0 < sum(labels) < len(labels)
        ),
        st.integers(min_value=0, max_value=1000),
    )
    def test_auc_label_flip_antisymmetry(self, labels, seed):
        y = np.asarray(labels, dtype=int)
        scores = np.random.default_rng(seed).random(len(y))
        auc = roc_auc_score(y, scores)
        flipped = roc_auc_score(1 - y, scores)
        assert auc + flipped == pytest.approx(1.0)

    @SETTINGS
    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=50))
    def test_accuracy_of_self_is_one(self, labels):
        y = np.asarray(labels)
        assert accuracy_score(y, y) == 1.0

    @SETTINGS
    @given(frames())
    def test_standard_scaler_inverse_roundtrip(self, frame):
        X = frame.to_numpy()
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X, atol=1e-6)
