"""Tests for Column and the lineage-id derivation scheme."""

import numpy as np
import pytest

from repro.dataframe.column import (
    Column,
    combine_column_ids,
    derive_column_id,
    fresh_column_id,
)


class TestColumnBasics:
    def test_length(self):
        column = Column("a", np.asarray([1, 2, 3]))
        assert len(column) == 3

    def test_dtype(self):
        column = Column("a", np.asarray([1.0, 2.0]))
        assert column.dtype == np.float64

    def test_rejects_2d_values(self):
        with pytest.raises(ValueError, match="1-dimensional"):
            Column("a", np.zeros((2, 2)))

    def test_fresh_id_assigned(self):
        column = Column("a", np.asarray([1]))
        assert len(column.column_id) == 32

    def test_explicit_id_preserved(self):
        column = Column("a", np.asarray([1]), column_id="abc")
        assert column.column_id == "abc"

    def test_numeric_detection(self):
        assert Column("a", np.asarray([1.5])).is_numeric
        assert not Column("a", np.asarray(["x"], dtype=object)).is_numeric

    def test_nbytes_numeric(self):
        column = Column("a", np.zeros(10, dtype=np.float64))
        assert column.nbytes == 80

    def test_nbytes_object_counts_string_payload(self):
        short = Column("a", np.asarray(["x"], dtype=object))
        long = Column("a", np.asarray(["x" * 100], dtype=object))
        assert long.nbytes > short.nbytes


class TestLineageIds:
    def test_fresh_ids_unique(self):
        assert fresh_column_id() != fresh_column_id()

    def test_derive_is_deterministic(self):
        assert derive_column_id("op1", "col1") == derive_column_id("op1", "col1")

    def test_derive_depends_on_operation(self):
        assert derive_column_id("op1", "col1") != derive_column_id("op2", "col1")

    def test_derive_depends_on_input(self):
        assert derive_column_id("op1", "col1") != derive_column_id("op1", "col2")

    def test_combine_is_order_insensitive(self):
        assert combine_column_ids("op", ["a", "b"]) == combine_column_ids("op", ["b", "a"])

    def test_combine_differs_from_single_derive(self):
        assert combine_column_ids("op", ["a"]) != derive_column_id("op", "a")

    def test_rename_preserves_id(self):
        column = Column("a", np.asarray([1]))
        assert column.rename("b").column_id == column.column_id
        assert column.rename("b").name == "b"

    def test_with_values_changes_id(self):
        column = Column("a", np.asarray([1.0]))
        transformed = column.with_values(np.asarray([2.0]), "op")
        assert transformed.column_id != column.column_id
        assert transformed.values[0] == 2.0

    def test_take_changes_id_and_subsets(self):
        column = Column("a", np.asarray([1.0, 2.0, 3.0]))
        taken = column.take(np.asarray([0, 2]), "op")
        assert list(taken.values) == [1.0, 3.0]
        assert taken.column_id != column.column_id

    def test_same_operation_chain_same_id(self):
        base = Column("a", np.asarray([1.0, 2.0]), column_id="root")
        via1 = base.with_values(np.asarray([2.0, 4.0]), "double")
        via2 = base.with_values(np.asarray([2.0, 4.0]), "double")
        assert via1.column_id == via2.column_id

    def test_copy_preserves_identity_and_values(self):
        column = Column("a", np.asarray([1.0, 2.0]))
        duplicate = column.copy()
        assert duplicate.column_id == column.column_id
        duplicate.values[0] = 99.0
        assert column.values[0] == 1.0
