"""Tests for the extended dataframe operations (clip, cut, counts, dedup)."""

import numpy as np
import pytest

from repro.dataframe import DataFrame


@pytest.fixture
def frame():
    return DataFrame(
        {
            "age": np.asarray([22.0, 35.0, 35.0, 61.0, 88.0]),
            "city": np.asarray(["a", "b", "a", "b", "c"], dtype=object),
            "score": np.asarray([-5.0, 0.5, 1.5, 9.0, 2.0]),
        }
    )


class TestClip:
    def test_clamps_both_sides(self, frame):
        out = frame.clip_column("score", lower=0.0, upper=2.0)
        assert list(out.values("score")) == [0.0, 0.5, 1.5, 2.0, 2.0]

    def test_one_sided(self, frame):
        out = frame.clip_column("score", lower=0.0)
        assert out.values("score").min() == 0.0
        assert out.values("score").max() == 9.0

    def test_requires_a_bound(self, frame):
        with pytest.raises(ValueError):
            frame.clip_column("score")

    def test_other_columns_keep_ids(self, frame):
        out = frame.clip_column("score", upper=1.0)
        assert out.column_ids["age"] == frame.column_ids["age"]
        assert out.column_ids["score"] != frame.column_ids["score"]


class TestCut:
    def test_bin_indices(self, frame):
        out = frame.cut_column("age", bins=[0, 30, 60, 100])
        assert list(out.values("age_bin")) == [0, 1, 1, 2, 2]

    def test_labels(self, frame):
        out = frame.cut_column(
            "age", bins=[0, 30, 60, 100], labels=["young", "mid", "old"]
        )
        assert list(out.values("age_bin")) == ["young", "mid", "mid", "old", "old"]

    def test_out_of_range_clamped_to_edge_bins(self):
        frame = DataFrame({"x": [-10.0, 500.0]})
        out = frame.cut_column("x", bins=[0, 1, 2])
        assert list(out.values("x_bin")) == [0, 1]

    def test_custom_output_name(self, frame):
        out = frame.cut_column("age", bins=[0, 50, 100], output="age_group")
        assert "age_group" in out

    def test_validation(self, frame):
        with pytest.raises(ValueError, match="edges"):
            frame.cut_column("age", bins=[1])
        with pytest.raises(ValueError, match="labels"):
            frame.cut_column("age", bins=[0, 1, 2], labels=["only_one"])

    def test_source_column_survives(self, frame):
        out = frame.cut_column("age", bins=[0, 50, 100])
        assert "age" in out and "age_bin" in out


class TestValueCounts:
    def test_descending_counts(self, frame):
        counts = frame.value_counts("city")
        assert counts.columns == ["city", "count"]
        assert list(counts.values("count")) == [2, 2, 1]

    def test_total_preserved(self, frame):
        counts = frame.value_counts("city")
        assert counts.values("count").sum() == frame.num_rows

    def test_deterministic_ids(self, frame):
        a = frame.value_counts("city", operation_hash="h")
        b = frame.value_counts("city", operation_hash="h")
        assert a.column_ids == b.column_ids


class TestDropDuplicates:
    def test_subset_keys(self, frame):
        out = frame.drop_duplicates(subset=["city"])
        assert out.num_rows == 3
        assert list(out.values("city")) == ["a", "b", "c"]

    def test_first_occurrence_kept(self, frame):
        out = frame.drop_duplicates(subset=["city"])
        assert out.values("age")[0] == 22.0  # first 'a' row

    def test_all_columns_default(self):
        frame = DataFrame({"x": [1, 1, 2], "y": [1, 1, 3]})
        assert frame.drop_duplicates().num_rows == 2

    def test_no_duplicates_is_identity_rows(self, frame):
        out = frame.drop_duplicates(subset=["age", "city", "score"])
        assert out.num_rows == frame.num_rows


class TestIsinAndAstype:
    def test_isin_filter(self, frame):
        out = frame.isin_filter("city", ["a", "c"])
        assert out.num_rows == 3
        assert set(out.values("city")) == {"a", "c"}

    def test_isin_empty_allowed(self, frame):
        assert frame.isin_filter("city", []).num_rows == 0

    def test_astype(self, frame):
        out = frame.astype_column("age", np.int64)
        assert out.values("age").dtype == np.int64
        assert list(out.values("age")) == [22, 35, 35, 61, 88]


class TestNodeApi:
    def test_lazy_ops_compose(self, frame):
        from repro.client.api import Workspace
        from repro.client.executor import Executor
        from repro.graph.pruning import prune_workload

        ws = Workspace()
        data = ws.source("d", frame)
        shaped = (
            data.clip("score", lower=0.0)
            .cut("age", bins=[0, 40, 100], labels=["young", "old"])
            .isin_filter("city", ["a", "b"])
            .drop_duplicates(subset=["city"])
        )
        shaped.terminal()
        prune_workload(ws.dag)
        Executor().execute(ws.dag)
        result = ws.dag.vertex(shaped.vertex_id).data
        assert result.num_rows == 2
        assert "age_bin" in result

    def test_value_counts_node(self, frame):
        from repro.client.api import Workspace

        ws = Workspace(eager=True)
        counts = ws.source("d", frame).value_counts("city")
        assert counts.payload.values("count").sum() == 5
