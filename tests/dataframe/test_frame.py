"""Tests for the columnar DataFrame."""

import numpy as np
import pytest

from repro.dataframe import Column, DataFrame


class TestConstruction:
    def test_from_mapping(self, simple_frame):
        assert simple_frame.columns == ["a", "b", "key", "name"]
        assert simple_frame.shape == (4, 4)

    def test_from_columns(self):
        frame = DataFrame([Column("x", np.asarray([1, 2]))])
        assert frame.columns == ["x"]

    def test_empty(self):
        frame = DataFrame()
        assert frame.shape == (0, 0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length"):
            DataFrame({"a": [1, 2], "b": [1]})

    def test_duplicate_column_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            DataFrame([Column("x", np.asarray([1])), Column("x", np.asarray([2]))])

    def test_non_column_sequence_rejected(self):
        with pytest.raises(TypeError):
            DataFrame([np.asarray([1, 2])])

    def test_nbytes_positive(self, simple_frame):
        assert simple_frame.nbytes > 0


class TestAccess:
    def test_getitem_single(self, simple_frame):
        projected = simple_frame["a"]
        assert projected.columns == ["a"]

    def test_getitem_list(self, simple_frame):
        projected = simple_frame[["a", "b"]]
        assert projected.columns == ["a", "b"]

    def test_missing_column_raises(self, simple_frame):
        with pytest.raises(KeyError, match="nope"):
            simple_frame.column("nope")

    def test_contains(self, simple_frame):
        assert "a" in simple_frame
        assert "zz" not in simple_frame

    def test_values(self, simple_frame):
        assert list(simple_frame.values("a")) == [1.0, 2.0, 3.0, 4.0]

    def test_to_numpy(self, simple_frame):
        matrix = simple_frame[["a", "b"]].to_numpy()
        assert matrix.shape == (4, 2)

    def test_to_numpy_rejects_object(self, simple_frame):
        with pytest.raises(TypeError, match="not numeric"):
            simple_frame.to_numpy()

    def test_head(self, simple_frame):
        assert simple_frame.head(2).num_rows == 2

    def test_equality(self, simple_frame):
        other = simple_frame.select(simple_frame.columns)
        assert simple_frame == other

    def test_inequality_on_values(self):
        a = DataFrame({"x": [1.0]})
        b = DataFrame({"x": [2.0]})
        assert a != b


class TestProjectionLineage:
    def test_select_preserves_ids(self, simple_frame):
        ids_before = simple_frame.column_ids
        projected = simple_frame.select(["a", "b"])
        assert projected.column_ids["a"] == ids_before["a"]

    def test_drop(self, simple_frame):
        remaining = simple_frame.drop(["name"])
        assert "name" not in remaining
        assert remaining.column_ids["a"] == simple_frame.column_ids["a"]

    def test_drop_string_arg(self, simple_frame):
        assert "name" not in simple_frame.drop("name")

    def test_drop_missing_raises(self, simple_frame):
        with pytest.raises(KeyError):
            simple_frame.drop(["zz"])

    def test_rename_preserves_ids(self, simple_frame):
        renamed = simple_frame.rename({"a": "alpha"})
        assert renamed.column_ids["alpha"] == simple_frame.column_ids["a"]

    def test_with_column_replaces(self, simple_frame):
        out = simple_frame.with_column("a", np.asarray([9.0, 9.0, 9.0, 9.0]))
        assert list(out.values("a")) == [9.0] * 4
        assert out.column_ids["b"] == simple_frame.column_ids["b"]

    def test_with_column_length_checked(self, simple_frame):
        with pytest.raises(ValueError, match="length"):
            simple_frame.with_column("z", np.asarray([1.0]))

    def test_assign_derives_combined_id(self, simple_frame):
        out1 = simple_frame.assign("s", lambda f: f.values("a") + f.values("b"), "h1")
        out2 = simple_frame.assign("s", lambda f: f.values("a") + f.values("b"), "h1")
        assert out1.column_ids["s"] == out2.column_ids["s"]
        assert list(out1.values("s")) == [11.0, 22.0, 33.0, 44.0]


class TestRowOperations:
    def test_filter(self, simple_frame):
        kept = simple_frame.filter(lambda f: f.values("a") > 2.0, "h")
        assert kept.num_rows == 2
        assert kept.column_ids["a"] != simple_frame.column_ids["a"]

    def test_filter_shape_check(self, simple_frame):
        with pytest.raises(ValueError, match="shape"):
            simple_frame.filter(lambda f: np.asarray([True]), "h")

    def test_sample_deterministic(self, simple_frame):
        s1 = simple_frame.sample(2, random_state=5)
        s2 = simple_frame.sample(2, random_state=5)
        assert s1 == s2

    def test_sample_capped_at_rows(self, simple_frame):
        assert simple_frame.sample(100).num_rows == 4

    def test_sort_values(self, simple_frame):
        ordered = simple_frame.sort_values("a", ascending=False)
        assert list(ordered.values("a")) == [4.0, 3.0, 2.0, 1.0]

    def test_map_column_only_changes_target_id(self, simple_frame):
        out = simple_frame.map_column("a", lambda v: v * 2, "h")
        assert out.column_ids["a"] != simple_frame.column_ids["a"]
        assert out.column_ids["b"] == simple_frame.column_ids["b"]


class TestFillNA:
    @pytest.fixture
    def frame_with_nan(self):
        return DataFrame({"a": [1.0, np.nan, 3.0], "b": [1.0, 2.0, 3.0]})

    def test_fill_constant(self, frame_with_nan):
        out = frame_with_nan.fillna(value=0.0)
        assert list(out.values("a")) == [1.0, 0.0, 3.0]

    def test_fill_mean(self, frame_with_nan):
        out = frame_with_nan.fillna(strategy="mean")
        assert out.values("a")[1] == pytest.approx(2.0)

    def test_fill_median(self, frame_with_nan):
        out = frame_with_nan.fillna(strategy="median")
        assert out.values("a")[1] == pytest.approx(2.0)

    def test_fill_zero(self, frame_with_nan):
        out = frame_with_nan.fillna(strategy="zero")
        assert out.values("a")[1] == 0.0

    def test_unaffected_column_keeps_id(self, frame_with_nan):
        out = frame_with_nan.fillna(strategy="mean")
        assert out.column_ids["b"] == frame_with_nan.column_ids["b"]
        assert out.column_ids["a"] != frame_with_nan.column_ids["a"]

    def test_requires_exactly_one_mode(self, frame_with_nan):
        with pytest.raises(ValueError):
            frame_with_nan.fillna()
        with pytest.raises(ValueError):
            frame_with_nan.fillna(value=1.0, strategy="mean")

    def test_unknown_strategy(self, frame_with_nan):
        with pytest.raises(ValueError, match="unknown"):
            frame_with_nan.fillna(strategy="mode")

    def test_column_subset(self, frame_with_nan):
        out = frame_with_nan.fillna(strategy="zero", columns=["b"])
        assert np.isnan(out.values("a")[1])


class TestConcat:
    def test_concat_columns(self, simple_frame):
        other = DataFrame({"z": [5.0, 6.0, 7.0, 8.0]})
        wide = DataFrame.concat_columns([simple_frame, other])
        assert wide.num_columns == 5
        assert wide.column_ids["a"] == simple_frame.column_ids["a"]

    def test_concat_columns_dedups_names(self):
        a = DataFrame({"x": [1.0]})
        b = DataFrame({"x": [2.0]})
        wide = DataFrame.concat_columns([a, b])
        assert wide.columns == ["x", "x_1"]

    def test_concat_columns_row_mismatch(self, simple_frame):
        with pytest.raises(ValueError, match="rows"):
            DataFrame.concat_columns([simple_frame, DataFrame({"z": [1.0]})])

    def test_concat_rows(self):
        a = DataFrame({"x": [1.0], "y": [2.0]})
        b = DataFrame({"x": [3.0], "y": [4.0]})
        tall = DataFrame.concat_rows([a, b])
        assert tall.num_rows == 2
        assert list(tall.values("x")) == [1.0, 3.0]

    def test_concat_rows_schema_mismatch(self):
        a = DataFrame({"x": [1.0]})
        b = DataFrame({"y": [1.0]})
        with pytest.raises(ValueError, match="columns"):
            DataFrame.concat_rows([a, b])

    def test_concat_rows_empty(self):
        assert DataFrame.concat_rows([]).num_rows == 0

    def test_concat_rows_deterministic_ids(self):
        a = DataFrame({"x": Column("x", np.asarray([1.0]), "ida")})
        b = DataFrame({"x": Column("x", np.asarray([2.0]), "idb")})
        t1 = DataFrame.concat_rows([a, b], operation_hash="h")
        t2 = DataFrame.concat_rows([a, b], operation_hash="h")
        assert t1.column_ids == t2.column_ids


class TestMerge:
    @pytest.fixture
    def left(self):
        return DataFrame({"k": [1, 2, 3], "v": [10.0, 20.0, 30.0]})

    @pytest.fixture
    def right(self):
        return DataFrame({"k": [2, 3, 4], "w": [200.0, 300.0, 400.0]})

    def test_inner(self, left, right):
        joined = left.merge(right, on="k")
        assert joined.num_rows == 2
        assert list(joined.values("k")) == [2, 3]
        assert list(joined.values("w")) == [200.0, 300.0]

    def test_left(self, left, right):
        joined = left.merge(right, on="k", how="left")
        assert joined.num_rows == 3
        assert np.isnan(joined.values("w")[0])

    def test_one_to_many(self):
        left = DataFrame({"k": [1], "v": [10.0]})
        right = DataFrame({"k": [1, 1], "w": [1.0, 2.0]})
        joined = left.merge(right, on="k")
        assert joined.num_rows == 2

    def test_suffixes(self):
        left = DataFrame({"k": [1], "v": [1.0]})
        right = DataFrame({"k": [1], "v": [2.0]})
        joined = left.merge(right, on="k")
        assert set(joined.columns) == {"k", "v_x", "v_y"}

    def test_unsupported_how(self, left, right):
        with pytest.raises(ValueError, match="join type"):
            left.merge(right, on="k", how="outer")

    def test_deterministic_ids(self, left, right):
        j1 = left.merge(right, on="k", operation_hash="h")
        j2 = left.merge(right, on="k", operation_hash="h")
        assert j1.column_ids == j2.column_ids


class TestGroupBy:
    def test_sum_and_mean(self, simple_frame):
        grouped = simple_frame.groupby_agg("key", {"a": ["sum", "mean"]})
        assert grouped.columns == ["key", "a_sum", "a_mean"]
        assert list(grouped.values("a_sum")) == [3.0, 7.0]
        assert list(grouped.values("a_mean")) == [1.5, 3.5]

    def test_count(self, simple_frame):
        grouped = simple_frame.groupby_agg("key", {"a": "count"})
        assert list(grouped.values("a_count")) == [2, 2]

    def test_min_max(self, simple_frame):
        grouped = simple_frame.groupby_agg("key", {"b": ["min", "max"]})
        assert list(grouped.values("b_min")) == [10.0, 30.0]
        assert list(grouped.values("b_max")) == [20.0, 40.0]

    def test_nunique(self, simple_frame):
        grouped = simple_frame.groupby_agg("key", {"name": "nunique"})
        assert list(grouped.values("name_nunique")) == [2, 2]

    def test_std_single_element_is_zero(self):
        frame = DataFrame({"k": [1, 2], "v": [1.0, 5.0]})
        grouped = frame.groupby_agg("k", {"v": "std"})
        assert list(grouped.values("v_std")) == [0.0, 0.0]

    def test_unknown_aggregation(self, simple_frame):
        with pytest.raises(ValueError, match="unknown aggregation"):
            simple_frame.groupby_agg("key", {"a": "magic"})

    def test_multi_key_groups(self, simple_frame):
        grouped = simple_frame.groupby_agg(["key", "name"], {"a": "sum"})
        assert grouped.columns == ["key", "name", "a_sum"]
        rows = {
            (k, n): s
            for k, n, s in zip(
                grouped.values("key"), grouped.values("name"), grouped.values("a_sum")
            )
        }
        assert rows == {(1, "x"): 1.0, (1, "y"): 2.0, (2, "x"): 3.0, (2, "z"): 4.0}

    def test_multi_key_deterministic_order(self, simple_frame):
        a = simple_frame.groupby_agg(["key", "name"], {"a": "sum"}, operation_hash="h")
        b = simple_frame.groupby_agg(["key", "name"], {"a": "sum"}, operation_hash="h")
        assert a == b
        assert a.column_ids == b.column_ids

    def test_multi_key_single_entry_matches_single_key(self, simple_frame):
        single = simple_frame.groupby_agg("key", {"a": "sum"}, operation_hash="h")
        listed = simple_frame.groupby_agg(["key"], {"a": "sum"}, operation_hash="h")
        assert list(single.values("a_sum")) == list(listed.values("a_sum"))

    def test_groupby_empty_keys_rejected(self, simple_frame):
        with pytest.raises(ValueError, match="at least one"):
            simple_frame.groupby_agg([], {"a": "sum"})


class TestOneHotAndAlign:
    def test_one_hot_expands(self, simple_frame):
        out = simple_frame.one_hot("name")
        assert "name" not in out
        assert {"name_x", "name_y", "name_z"} <= set(out.columns)

    def test_one_hot_values(self, simple_frame):
        out = simple_frame.one_hot("name")
        assert list(out.values("name_x")) == [1, 0, 1, 0]

    def test_one_hot_preserves_other_ids(self, simple_frame):
        out = simple_frame.one_hot("name")
        assert out.column_ids["a"] == simple_frame.column_ids["a"]

    def test_align_keeps_intersection(self):
        left = DataFrame({"a": [1.0], "b": [2.0]})
        right = DataFrame({"b": [3.0], "c": [4.0]})
        aligned_left, aligned_right = DataFrame.align(left, right)
        assert aligned_left.columns == ["b"]
        assert aligned_right.columns == ["b"]

    def test_align_preserves_ids(self):
        left = DataFrame({"a": [1.0], "b": [2.0]})
        right = DataFrame({"b": [3.0]})
        aligned_left, _ = DataFrame.align(left, right)
        assert aligned_left.column_ids["b"] == left.column_ids["b"]

    def test_describe_numeric_only(self, simple_frame):
        summary = simple_frame.describe()
        assert "a" in summary and "name" not in summary
        assert summary["a"]["mean"] == pytest.approx(2.5)
