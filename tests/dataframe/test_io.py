"""CSV round-trip tests."""

import numpy as np
import pytest

from repro.dataframe import DataFrame, read_csv, write_csv


@pytest.fixture
def csv_path(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text("id,score,label\n1,0.5,yes\n2,,no\n3,1.5,\n")
    return path


class TestReadCsv:
    def test_columns(self, csv_path):
        frame = read_csv(csv_path)
        assert frame.columns == ["id", "score", "label"]

    def test_int_inference(self, csv_path):
        frame = read_csv(csv_path)
        assert frame.values("id").dtype == np.int64

    def test_float_with_missing(self, csv_path):
        frame = read_csv(csv_path)
        values = frame.values("score")
        assert values.dtype == np.float64
        assert np.isnan(values[1])

    def test_string_with_missing(self, csv_path):
        frame = read_csv(csv_path)
        values = frame.values("label")
        assert values[0] == "yes"
        assert values[2] is None

    def test_usecols(self, csv_path):
        frame = read_csv(csv_path, usecols=["id"])
        assert frame.columns == ["id"]

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        assert read_csv(path).num_columns == 0

    def test_header_only(self, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("a,b\n")
        frame = read_csv(path)
        assert frame.columns == ["a", "b"]
        assert frame.num_rows == 0

    def test_all_missing_column_is_nan(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("a\n\n\n")
        assert np.isnan(read_csv(path).values("a")).all()

    def test_ragged_short_rows_padded(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1,2\n3\n")
        frame = read_csv(path)
        assert frame.num_rows == 2
        assert np.isnan(frame.values("b")[1])

    def test_ragged_long_rows_truncated(self, tmp_path):
        path = tmp_path / "long.csv"
        path.write_text("a\n1,99\n2\n")
        frame = read_csv(path)
        assert list(frame.values("a")) == [1, 2]


class TestRoundTrip:
    def test_numeric_roundtrip(self, tmp_path):
        frame = DataFrame({"x": [1.0, 2.5], "n": [3, 4]})
        path = tmp_path / "out.csv"
        write_csv(frame, path)
        back = read_csv(path)
        assert list(back.values("x")) == [1.0, 2.5]
        assert list(back.values("n")) == [3, 4]

    def test_nan_roundtrip(self, tmp_path):
        frame = DataFrame({"x": [1.0, np.nan]})
        path = tmp_path / "out.csv"
        write_csv(frame, path)
        assert np.isnan(read_csv(path).values("x")[1])

    def test_string_roundtrip(self, tmp_path):
        frame = DataFrame({"s": np.asarray(["a", "b"], dtype=object)})
        path = tmp_path / "out.csv"
        write_csv(frame, path)
        assert list(read_csv(path).values("s")) == ["a", "b"]
