"""Connection pool: retry-once on dropped connections, sticky affinity."""

import socket
import threading

import pytest

from repro.service.errors import RequestTimeoutError
from repro.transport.client import ConnectionPool, TransportConnection
from repro.transport.codec import JsonWireCodec
from repro.transport.errors import ConnectionLostError
from repro.transport.frames import KIND_RESPONSE, recv_frame, send_frame


class FakeFrameServer:
    """A raw frame-speaking echo server that can drop connections on cue.

    The first ``drop_requests`` requests it sees are answered by slamming
    the connection shut mid-request instead of responding.
    """

    def __init__(self, drop_requests: int = 0, respond: bool = True, port: int = 0):
        self.drop_requests = drop_requests
        self.respond = respond
        self.requests_seen = 0
        self.connections_seen = 0
        self._lock = threading.Lock()
        self._listener = socket.create_server(("127.0.0.1", port))
        self._listener.settimeout(0.2)
        self.port = self._listener.getsockname()[1]
        self._closing = threading.Event()
        self._threads: list[threading.Thread] = []
        self._live: list[socket.socket] = []
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                conn, _addr = self._listener.accept()
            except TimeoutError:
                continue
            except OSError:
                break
            with self._lock:
                self.connections_seen += 1
                self._live.append(conn)
            thread = threading.Thread(
                target=self._serve, args=(conn,), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _serve(self, conn: socket.socket) -> None:
        codec = JsonWireCodec()
        try:
            while not self._closing.is_set():
                frame = recv_frame(conn)
                if frame is None:
                    return
                header, body = frame
                with self._lock:
                    self.requests_seen += 1
                    drop = self.drop_requests > 0
                    if drop:
                        self.drop_requests -= 1
                if drop:
                    conn.shutdown(socket.SHUT_RDWR)
                    return
                if not self.respond:
                    continue  # leave the waiter hanging
                message = codec.decode(body)
                parts = codec.encode({"ok": True, "echo": message})
                send_frame(
                    conn, KIND_RESPONSE, codec.codec_id, header.request_id, parts
                )
        except (ConnectionError, OSError):
            return
        finally:
            conn.close()

    def close(self) -> None:
        self._closing.set()
        self._listener.close()
        with self._lock:
            live, self._live = self._live, []
        for conn in live:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        self._accept_thread.join(timeout=5.0)
        for thread in self._threads:
            thread.join(timeout=5.0)


class TestPoolRetry:
    def test_mid_request_drop_retries_once_on_a_fresh_connection(self):
        server = FakeFrameServer(drop_requests=1)
        try:
            with ConnectionPool("127.0.0.1", server.port, size=1, codec="json") as pool:
                response = pool.request({"op": "ping"}, timeout_s=10.0)
                assert response["ok"] is True
                assert pool.retries == 1
            # the dropped attempt plus its replay on a fresh connection
            assert server.requests_seen == 2
            assert server.connections_seen == 2
        finally:
            server.close()

    def test_second_drop_surfaces_the_error(self):
        server = FakeFrameServer(drop_requests=2)
        try:
            with ConnectionPool("127.0.0.1", server.port, size=1, codec="json") as pool:
                with pytest.raises(ConnectionLostError):
                    pool.request({"op": "ping"}, timeout_s=10.0)
                # exactly one replay was attempted — never a retry storm
                assert pool.retries == 1
            assert server.requests_seen == 2
        finally:
            server.close()

    def test_retry_does_not_mask_timeouts(self):
        server = FakeFrameServer(respond=False)
        try:
            with ConnectionPool("127.0.0.1", server.port, size=1, codec="json") as pool:
                with pytest.raises(RequestTimeoutError):
                    pool.request({"op": "ping"}, timeout_s=0.2)
                assert pool.retries == 0  # a slow server is not a dead one
        finally:
            server.close()


class TestPoolAffinity:
    def test_same_thread_sticks_to_one_connection(self):
        server = FakeFrameServer()
        try:
            with ConnectionPool("127.0.0.1", server.port, size=4, codec="json") as pool:
                for _ in range(6):
                    pool.request({"op": "ping"}, timeout_s=10.0)
            # sticky affinity: one thread never hops across the pool,
            # so per-connection dedup ledgers keep seeing repeats
            assert server.connections_seen == 1
            assert server.requests_seen == 6
        finally:
            server.close()

    def test_distinct_threads_spread_across_the_pool(self):
        server = FakeFrameServer()
        try:
            with ConnectionPool("127.0.0.1", server.port, size=2, codec="json") as pool:
                barrier = threading.Barrier(2)
                errors: list[Exception] = []

                def worker():
                    try:
                        barrier.wait(timeout=5.0)
                        for _ in range(3):
                            pool.request({"op": "ping"}, timeout_s=10.0)
                    except Exception as error:  # noqa: BLE001 - surfaced below
                        errors.append(error)

                threads = [threading.Thread(target=worker) for _ in range(2)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=10.0)
                assert not errors
            assert server.connections_seen == 2
            assert server.requests_seen == 6
        finally:
            server.close()


class TestReconnectBackoff:
    def test_flapping_server_reconnect_backs_off_then_succeeds(self):
        """A request issued while the server flaps survives the restart.

        The pool re-dials with jittered exponential backoff; by the time
        the later attempts fire, the revived listener is back on the same
        port and the request completes on a fresh connection.
        """
        import time

        server = FakeFrameServer()
        port = server.port
        revived: list[FakeFrameServer] = []
        pool = ConnectionPool(
            "127.0.0.1",
            port,
            size=1,
            codec="json",
            connect_attempts=5,
            backoff_base_s=0.1,
            backoff_max_s=0.5,
        )
        try:
            assert pool.request({"op": "ping"}, timeout_s=10.0)["ok"] is True
            server.close()

            def revive() -> None:
                time.sleep(0.3)
                revived.append(FakeFrameServer(port=port))

            thread = threading.Thread(target=revive)
            thread.start()
            try:
                response = pool.request({"op": "ping"}, timeout_s=10.0)
            finally:
                thread.join(timeout=5.0)
            assert response["ok"] is True
            # at least one re-dial attempt slept through a backoff window
            assert pool.reconnect_backoffs >= 1
            assert (
                pool.wire_stats()["reconnect_backoffs"] == pool.reconnect_backoffs
            )
        finally:
            pool.close()
            for extra in revived:
                extra.close()

    def test_reconnect_gives_up_after_connect_attempts(self):
        # reserve a port with no listener behind it
        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        pool = ConnectionPool(
            "127.0.0.1",
            port,
            size=1,
            codec="json",
            connect_attempts=3,
            backoff_base_s=0.01,
            backoff_max_s=0.05,
        )
        try:
            with pytest.raises(ConnectionLostError, match="after 3 attempts"):
                pool.request({"op": "ping"}, timeout_s=5.0)
            # the first attempt is immediate; the two re-dials backed off
            assert pool.reconnect_backoffs == 2
        finally:
            pool.close()


class TestConnectionLifecycle:
    def test_requests_after_close_are_refused(self):
        server = FakeFrameServer()
        try:
            connection = TransportConnection("127.0.0.1", server.port, codec="json")
            connection.close()
            with pytest.raises(ConnectionLostError):
                connection.request({"op": "ping"})
        finally:
            server.close()

    def test_server_eof_fails_outstanding_waiters(self):
        server = FakeFrameServer(respond=False)
        try:
            connection = TransportConnection("127.0.0.1", server.port, codec="json")
            result: list[Exception] = []

            def waiter():
                try:
                    connection.request({"op": "ping"}, timeout_s=10.0)
                except Exception as error:  # noqa: BLE001 - surfaced below
                    result.append(error)

            thread = threading.Thread(target=waiter)
            thread.start()
            # give the request time to hit the wire, then kill the server
            import time

            time.sleep(0.2)
            server.close()
            thread.join(timeout=10.0)
            assert len(result) == 1
            assert isinstance(result[0], ConnectionLostError)
            connection.close()
        finally:
            server.close()
