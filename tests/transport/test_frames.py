"""Frame layer: header codec, blocking I/O, async I/O, EOF semantics."""

import asyncio
import socket
import struct

import pytest

from repro.service.errors import TruncatedFrameError
from repro.transport.errors import FrameTooLargeError, ProtocolError
from repro.transport.frames import (
    HEADER,
    KIND_ERROR,
    KIND_REQUEST,
    KIND_RESPONSE,
    CODEC_BINARY,
    CODEC_JSON,
    MAGIC,
    MAX_FRAME_BYTES,
    pack_header,
    read_frame_async,
    recv_frame,
    send_frame,
    unpack_header,
)


class TestHeader:
    def test_roundtrip(self):
        raw = pack_header(KIND_RESPONSE, CODEC_BINARY, 0xDEADBEEF, 12345)
        header = unpack_header(raw)
        assert header.kind == KIND_RESPONSE
        assert header.codec == CODEC_BINARY
        assert header.request_id == 0xDEADBEEF
        assert header.body_len == 12345

    def test_bad_magic_rejected(self):
        raw = HEADER.pack(0x1234, KIND_REQUEST, CODEC_JSON, 1, 0)
        with pytest.raises(ProtocolError, match="magic"):
            unpack_header(raw)

    def test_unknown_kind_and_codec_rejected(self):
        with pytest.raises(ProtocolError, match="kind"):
            unpack_header(HEADER.pack(MAGIC, 9, CODEC_JSON, 1, 0))
        with pytest.raises(ProtocolError, match="codec"):
            unpack_header(HEADER.pack(MAGIC, KIND_REQUEST, 9, 1, 0))

    def test_oversized_frames_refused_both_directions(self):
        with pytest.raises(FrameTooLargeError):
            pack_header(KIND_REQUEST, CODEC_JSON, 1, MAX_FRAME_BYTES + 1)
        raw = HEADER.pack(MAGIC, KIND_REQUEST, CODEC_JSON, 1, MAX_FRAME_BYTES + 1)
        with pytest.raises(FrameTooLargeError):
            unpack_header(raw)


class TestBlockingFrames:
    def test_send_recv_roundtrip_with_scattered_parts(self):
        ours, theirs = socket.socketpair()
        try:
            total = send_frame(
                theirs, KIND_REQUEST, CODEC_BINARY, 7, [b"abc", memoryview(b"defg")]
            )
            assert total == HEADER.size + 7
            frame = recv_frame(ours)
            assert frame is not None
            header, body = frame
            assert header.request_id == 7
            assert bytes(body) == b"abcdefg"
        finally:
            ours.close()
            theirs.close()

    def test_empty_body_roundtrips(self):
        ours, theirs = socket.socketpair()
        try:
            send_frame(theirs, KIND_ERROR, CODEC_JSON, 1, [])
            frame = recv_frame(ours)
            assert frame is not None
            assert frame[0].body_len == 0
            assert bytes(frame[1]) == b""
        finally:
            ours.close()
            theirs.close()

    def test_clean_eof_between_frames_is_none(self):
        ours, theirs = socket.socketpair()
        try:
            theirs.close()
            assert recv_frame(ours) is None
        finally:
            ours.close()

    def test_eof_inside_header_raises(self):
        ours, theirs = socket.socketpair()
        try:
            theirs.sendall(struct.pack(">H", MAGIC))  # only the magic
            theirs.close()
            with pytest.raises(TruncatedFrameError):
                recv_frame(ours)
        finally:
            ours.close()

    def test_eof_inside_body_raises(self):
        ours, theirs = socket.socketpair()
        try:
            theirs.sendall(pack_header(KIND_REQUEST, CODEC_JSON, 1, 100) + b"short")
            theirs.close()
            with pytest.raises(TruncatedFrameError):
                recv_frame(ours)
        finally:
            ours.close()


def _drain_reader(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


class TestAsyncFrames:
    def test_roundtrip(self):
        async def scenario():
            raw = pack_header(KIND_RESPONSE, CODEC_JSON, 3, 4) + b"body"
            frame = await read_frame_async(_drain_reader(raw))
            assert frame is not None
            header, body = frame
            assert header.request_id == 3
            assert bytes(body) == b"body"

        asyncio.run(scenario())

    def test_clean_eof_is_none(self):
        async def scenario():
            assert await read_frame_async(_drain_reader(b"")) is None

        asyncio.run(scenario())

    def test_truncated_header_raises(self):
        async def scenario():
            with pytest.raises(TruncatedFrameError):
                await read_frame_async(_drain_reader(b"\xe6"))

        asyncio.run(scenario())

    def test_truncated_body_raises(self):
        async def scenario():
            raw = pack_header(KIND_REQUEST, CODEC_JSON, 1, 50) + b"partial"
            with pytest.raises(TruncatedFrameError):
                await read_frame_async(_drain_reader(raw))

        asyncio.run(scenario())
