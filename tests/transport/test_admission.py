"""Admission control: token buckets, tiered shedding, typed errors."""

import math

import pytest

from repro.service.errors import ServiceOverloadedError
from repro.transport.admission import (
    AdmissionController,
    AdmissionPolicy,
    TokenBucket,
)
from repro.transport.errors import (
    AdmissionError,
    CommitShedError,
    PlanShedError,
    QuotaExceededError,
)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        assert all(bucket.try_acquire() for _ in range(3))
        assert not bucket.try_acquire()
        clock.advance(1.0)  # refills 2 tokens
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.advance(60.0)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_infinite_rate_never_exhausts(self):
        bucket = TokenBucket(rate=math.inf, burst=1.0, clock=FakeClock())
        assert all(bucket.try_acquire() for _ in range(100))

    def test_zero_burst_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


class TestAdmissionController:
    def test_permissive_defaults_admit_everything(self):
        controller = AdmissionController()
        for op in ("ping", "open_session", "plan", "commit", "stats", "metrics"):
            for _ in range(50):
                controller.admit(op, "t", inflight=1000)
        assert controller.shed_counts == {"quota": 0, "plan": 0, "commit": 0}

    def test_tier1_sheds_plan_traffic_first(self):
        controller = AdmissionController(AdmissionPolicy(shed_plan_inflight=4))
        controller.admit("plan", "t", inflight=4)  # at the threshold: fine
        with pytest.raises(PlanShedError):
            controller.admit("plan", "t", inflight=5)
        with pytest.raises(PlanShedError):
            controller.admit("stats", "t", inflight=5)
        # commits keep flowing at tier 1
        controller.admit("commit", "t", inflight=5)
        assert controller.shed_counts["plan"] == 2

    def test_tier2_sheds_non_urgent_commits(self):
        controller = AdmissionController(
            AdmissionPolicy(shed_plan_inflight=4, shed_commit_inflight=8)
        )
        with pytest.raises(CommitShedError):
            controller.admit("commit", "t", inflight=9)
        # the urgent flag rides through tier 2
        controller.admit("commit", "t", inflight=9, urgent=True)
        assert controller.shed_counts["commit"] == 1

    def test_commit_shed_on_low_merge_queue_headroom(self):
        headroom = [1]
        controller = AdmissionController(
            AdmissionPolicy(min_commit_headroom=2), headroom=lambda: headroom[0]
        )
        with pytest.raises(CommitShedError):
            controller.admit("commit", "t", inflight=0)
        headroom[0] = 3
        controller.admit("commit", "t", inflight=0)

    def test_per_tenant_quota_is_isolated(self):
        clock = FakeClock()
        controller = AdmissionController(
            AdmissionPolicy(tenant_rate=0.0, tenant_burst=2.0), clock=clock
        )
        controller.admit("plan", "greedy", inflight=0)
        controller.admit("commit", "greedy", inflight=0)
        with pytest.raises(QuotaExceededError):
            controller.admit("plan", "greedy", inflight=0)
        # a different tenant still has its own bucket
        controller.admit("plan", "polite", inflight=0)
        assert controller.shed_counts["quota"] == 1

    def test_housekeeping_ops_never_consume_quota(self):
        controller = AdmissionController(
            AdmissionPolicy(tenant_rate=0.0, tenant_burst=1.0), clock=FakeClock()
        )
        for _ in range(20):
            controller.admit("ping", "t", inflight=0)
            controller.admit("open_session", "t", inflight=0)
            controller.admit("close_session", "t", inflight=0)
        controller.admit("plan", "t", inflight=0)  # the single burst token
        with pytest.raises(QuotaExceededError):
            controller.admit("commit", "t", inflight=0)

    def test_admission_errors_back_off_like_overload(self):
        # existing client retry loops match on ServiceOverloadedError
        for error_type in (QuotaExceededError, PlanShedError, CommitShedError):
            assert issubclass(error_type, AdmissionError)
            assert issubclass(error_type, ServiceOverloadedError)
        assert QuotaExceededError.tier == 0
        assert PlanShedError.tier == 1
        assert CommitShedError.tier == 2
