"""Live introspection over the wire: health, debug, shed tail-keeping."""

import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro.client.executor import VirtualCostModel
from repro.dataframe import DataFrame
from repro.materialization.simple import MaterializeAll
from repro.obs.plane import FlightRecorder, perfetto_document
from repro.service import EGService
from repro.shard.service import ShardedEGService
from repro.transport import (
    AdmissionPolicy,
    AsyncTransportServer,
    PlanShedError,
    ProtocolError,
    TransportConnection,
    TransportServiceClient,
)
from repro.workloads.synthetic_dag import wide_workload_script


def make_sources():
    rng = np.random.default_rng(7)
    return {"wide": DataFrame({"x": rng.normal(size=8), "y": rng.normal(size=8)})}


def run_remote_workload(host, port, label="traced"):
    script = wide_workload_script(3, 2, 0.05)
    with TransportServiceClient(
        host, port, name="probe", cost_model=VirtualCostModel()
    ) as client:
        client.run_script(script, make_sources(), label=label)


class TestHealthOp:
    def test_health_has_service_and_transport_sections(self):
        service = EGService(MaterializeAll(), background=True)
        try:
            with AsyncTransportServer(service) as server:
                with TransportServiceClient(
                    *server.address, cost_model=VirtualCostModel()
                ) as client:
                    health = client.health()
                    assert health["status"] == "ok"
                    assert health["queue"]["capacity"] > 0
                    assert "shed-rate" in health["slo"]
                    transport = health["transport"]
                    assert transport["open_connections"] >= 1
                    assert transport["requests"] >= 1
                    assert "inflight" in transport
        finally:
            service.stop()

    def test_health_falls_back_without_a_health_surface(self):
        # duck-typed service with neither health() nor debug_info()
        service = SimpleNamespace(version=7, metrics_registry=None)
        with AsyncTransportServer(service) as server:
            connection = TransportConnection(*server.address)
            try:
                health = connection.request({"op": "health"})["health"]
                assert health["status"] == "ok"
                assert "transport" in health
            finally:
                connection.close()


class TestDebugOp:
    def test_debug_lists_traces_and_fetches_detail(self):
        recorder = FlightRecorder(slow_threshold_s=0.0, head_sample_every=0)
        service = EGService(
            MaterializeAll(), background=True, flight_recorder=recorder
        )
        try:
            with AsyncTransportServer(service) as server:
                host, port = server.address
                run_remote_workload(host, port)
                with TransportServiceClient(
                    host, port, cost_model=VirtualCostModel()
                ) as client:
                    info = client.debug()
                    assert info["recorder"]["kept_total"] >= 1
                    assert info["recent_traces"]
                    assert info["slowest_spans"]
                    trace_id = info["recent_traces"][0]["trace_id"]
                    detail = client.debug(trace_id=trace_id)
                    assert detail["trace"]
                    assert all(
                        span["trace_id"] == trace_id for span in detail["trace"]
                    )
                    # the wire-shipped spans render straight to Perfetto
                    document = perfetto_document(detail["trace"])
                    assert document["traceEvents"]
        finally:
            service.stop()

    def test_debug_without_surface_is_a_protocol_error(self):
        service = SimpleNamespace(version=7, metrics_registry=None)
        with AsyncTransportServer(service) as server:
            connection = TransportConnection(*server.address)
            try:
                with pytest.raises(ProtocolError):
                    connection.request({"op": "debug"})
            finally:
                connection.close()


class TestShedTailKeeping:
    def test_shed_requests_are_kept_and_health_still_answers(self):
        # nothing is slow and head sampling is off: only the shed path
        # can make the recorder keep a trace
        recorder = FlightRecorder(slow_threshold_s=1e9, head_sample_every=0)
        service = EGService(
            MaterializeAll(), background=True, flight_recorder=recorder
        )
        try:
            policy = AdmissionPolicy(shed_plan_inflight=0)
            with AsyncTransportServer(service, admission=policy) as server:
                connection = TransportConnection(*server.address)
                try:
                    with pytest.raises(PlanShedError):
                        connection.request({"op": "stats"})
                    # introspection is never shed, even mid-overload
                    health = connection.request({"op": "health"})["health"]
                    assert health["status"] == "ok"
                    assert health["transport"]["shed"] >= 1
                finally:
                    connection.close()
        finally:
            service.stop()
        kept = recorder.kept_traces(limit=None)
        shed = [t for t in kept if t["decision"] == "shed"]
        assert shed, f"expected a shed-kept trace, got {kept}"
        assert shed[0]["root"] == "transport.shed"


class TestShardedAcceptance:
    def test_sharded_server_links_exemplars_to_kept_traces(self):
        recorder = FlightRecorder(slow_threshold_s=0.0, head_sample_every=0)
        service = ShardedEGService(
            lambda _i: MaterializeAll(),
            2,
            background=True,
            flight_recorder=recorder,
        )
        try:
            with AsyncTransportServer(service) as server:
                host, port = server.address
                run_remote_workload(host, port, label="sharded")
                with TransportServiceClient(
                    host, port, cost_model=VirtualCostModel()
                ) as client:
                    info = client.debug(traces=256)
                    assert info["recorder"]["kept_total"] >= 1
                    kept_ids = {t["trace_id"] for t in info["recent_traces"]}
                    # merges run on the shards, so exemplars live in the
                    # shard registries — and must point into kept traces
                    exemplars = {}
                    for shard in service.shards:
                        hist = shard.metrics_registry.get(
                            "repro_service_merge_batch_seconds"
                        )
                        if hist is not None:
                            exemplars.update(hist.exemplars())
                    assert exemplars
                    linked = [
                        e["trace_id"]
                        for e in exemplars.values()
                        if e["trace_id"] in kept_ids
                    ]
                    assert linked, "no exemplar points into a kept trace"
                    detail = client.debug(trace_id=linked[0])
                    document = perfetto_document(detail["trace"])
                    assert document["traceEvents"]
        finally:
            service.stop()


class TestCLISmoke:
    def test_metrics_and_inspect_against_a_live_server(self, tmp_path):
        from repro.experiments import cli

        recorder = FlightRecorder(slow_threshold_s=0.0, head_sample_every=0)
        service = EGService(
            MaterializeAll(), background=True, flight_recorder=recorder
        )
        try:
            with AsyncTransportServer(service) as server:
                host, port = server.address
                run_remote_workload(host, port, label="cli")
                addr = f"{host}:{port}"
                assert cli.main(["metrics", "--addr", addr]) == 0
                out = tmp_path / "metrics.json"
                assert (
                    cli.main(
                        [
                            "metrics",
                            "--addr",
                            addr,
                            "--format",
                            "json",
                            "--metrics-out",
                            str(out),
                        ]
                    )
                    == 0
                )
                assert "repro_service_commits_total" in json.loads(out.read_text())
                perfetto = tmp_path / "trace.json"
                assert (
                    cli.main(
                        ["inspect", "--addr", addr, "--perfetto-out", str(perfetto)]
                    )
                    == 0
                )
                document = json.loads(perfetto.read_text())
                assert document["traceEvents"]
        finally:
            service.stop()
