"""End-to-end tests for the async multiplexed transport server."""

import socket
import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.client.executor import VirtualCostModel
from repro.dataframe import DataFrame
from repro.materialization.simple import MaterializeAll
from repro.service import EGService, UnknownSessionError
from repro.shard.service import ShardedEGService
from repro.transport import (
    AdmissionPolicy,
    AsyncTransportServer,
    QuotaExceededError,
    TransportConnection,
    TransportServiceClient,
)
from repro.workloads.synthetic_dag import wide_workload_script

EMPTY_WORKLOAD = {"vertices": [], "edges": [], "terminals": []}


def make_sources():
    rng = np.random.default_rng(7)
    return {"wide": DataFrame({"x": rng.normal(size=8), "y": rng.normal(size=8)})}


class TestEndToEnd:
    @pytest.mark.parametrize("codec", ["binary", "json"])
    def test_plan_commit_reuse_and_stats(self, codec):
        script = wide_workload_script(3, 2, 0.05)
        with EGService(MaterializeAll()) as service:
            with AsyncTransportServer(service) as server:
                host, port = server.address
                with TransportServiceClient(
                    host, port, name="remote", codec=codec,
                    cost_model=VirtualCostModel(),
                ) as client:
                    assert client.ping() == 0
                    first = client.run_script(script, make_sources(), label="w1")
                    second = client.run_script(script, make_sources(), label="w2")
                    assert first.executed_vertices == 6
                    assert second.loaded_vertices == 3
                    assert second.executed_vertices == 0
                    stats = client.stats()
                    assert stats["commits_total"] == 2
                    assert stats["reuse_hit_rate"] == 0.5
                wire = server.wire_stats()
                assert wire["frames_in"] > 0 and wire["bytes_in"] > 0
            assert service.eg.num_vertices == 7

    def test_two_clients_share_the_graph(self):
        script = wide_workload_script(2, 2, 0.05)
        with EGService(MaterializeAll()) as service:
            with AsyncTransportServer(service) as server:
                host, port = server.address
                with TransportServiceClient(
                    host, port, name="a", cost_model=VirtualCostModel()
                ) as alice:
                    alice.run_script(script, make_sources())
                with TransportServiceClient(
                    host, port, name="b", cost_model=VirtualCostModel()
                ) as bob:
                    report = bob.run_script(script, make_sources())
                assert report.loaded_vertices > 0  # bob reuses alice's work

    def test_sharded_service_behind_the_transport(self):
        script = wide_workload_script(3, 2, 0.05)
        with ShardedEGService(lambda _i: MaterializeAll(), 2) as service:
            with AsyncTransportServer(service) as server:
                host, port = server.address
                with TransportServiceClient(
                    host, port, name="s", cost_model=VirtualCostModel()
                ) as client:
                    first = client.run_script(script, make_sources(), label="a")
                    second = client.run_script(script, make_sources(), label="b")
                    assert first.executed_vertices == 6
                    assert second.loaded_vertices == 3

    def test_json_and_binary_runs_converge_identically(self):
        from repro.experiments.swarm import eg_fingerprint

        script = wide_workload_script(3, 2, 0.05)
        fingerprints = {}
        for codec in ("binary", "json"):
            with EGService(MaterializeAll()) as service:
                with AsyncTransportServer(service) as server:
                    with TransportServiceClient(
                        *server.address, name="c", codec=codec,
                        cost_model=VirtualCostModel(),
                    ) as client:
                        client.run_script(script, make_sources(), label="w1")
                        client.run_script(script, make_sources(), label="w2")
                fingerprints[codec] = eg_fingerprint(service.eg)
        assert fingerprints["binary"] == fingerprints["json"]

    def test_trace_context_crosses_the_wire(self):
        from repro.obs.sinks import InMemorySink
        from repro.obs.trace import Tracer, use_tracer

        script = wide_workload_script(3, 2, 0.05)
        sink = InMemorySink()
        with use_tracer(Tracer(sinks=[sink])):
            with EGService(MaterializeAll()) as service:
                with AsyncTransportServer(service) as server:
                    with TransportServiceClient(
                        *server.address, cost_model=VirtualCostModel()
                    ) as client:
                        client.run_script(script, make_sources(), label="traced")
        workloads = [s for s in sink.spans if s.name == "client.workload"]
        assert len(workloads) == 1
        # the client stamps its span context onto each request frame and
        # the server parents its spans to it — so the merge worker's
        # commit lands in the same trace as the workload, matching the
        # in-process path
        in_trace = {s.name for s in sink.spans if s.trace_id == workloads[0].trace_id}
        assert "transport.request" in in_trace
        assert "service.commit" in in_trace

    def test_metrics_exposition_includes_transport_counters(self):
        with EGService(MaterializeAll()) as service:
            with AsyncTransportServer(service) as server:
                with TransportServiceClient(
                    *server.address, cost_model=VirtualCostModel()
                ) as client:
                    client.ping()
                    text = client.metrics()
                    assert "repro_transport_wire_bytes_total" in text
                    snapshot = client.metrics(format="json")
                    assert "repro_transport_requests_total" in snapshot


class TestTypedErrors:
    def test_unknown_session_crosses_the_wire(self):
        with EGService(MaterializeAll()) as service:
            with AsyncTransportServer(service) as server:
                with TransportServiceClient(
                    *server.address, cost_model=VirtualCostModel()
                ) as client:
                    with pytest.raises(UnknownSessionError):
                        client.request(
                            {
                                "op": "plan",
                                "session_id": "s9999",
                                "workload": EMPTY_WORKLOAD,
                            }
                        )

    def test_quota_shed_is_typed_and_counted(self):
        with EGService(MaterializeAll()) as service:
            policy = AdmissionPolicy(tenant_rate=0.0, tenant_burst=1.0)
            with AsyncTransportServer(service, admission=policy) as server:
                with TransportServiceClient(
                    *server.address, name="greedy", cost_model=VirtualCostModel()
                ) as client:
                    message = {
                        "op": "plan",
                        "session_id": client.session_id,
                        "tenant": "greedy",
                        "workload": EMPTY_WORKLOAD,
                    }
                    client.request(message)  # the one burst token
                    with pytest.raises(QuotaExceededError):
                        client.request(message)
                assert server.wire_stats()["shed"] == 1
                assert server.admission.shed_counts["quota"] == 1

    def test_garbage_bytes_drop_the_connection(self):
        with EGService(MaterializeAll()) as service:
            with AsyncTransportServer(service) as server:
                host, port = server.address
                raw = socket.create_connection((host, port), timeout=5.0)
                try:
                    raw.sendall(b"GET / HTTP/1.1\r\n\r\n" + b"\x00" * 16)
                    raw.settimeout(5.0)
                    assert raw.recv(1) == b""  # server closed on bad magic
                finally:
                    raw.close()
                deadline = time.time() + 5.0
                while time.time() < deadline:
                    if server.metrics_registry.counter(
                        "repro_transport_protocol_errors_total"
                    ).total() >= 1:
                        break
                    time.sleep(0.01)
                assert (
                    server.metrics_registry.counter(
                        "repro_transport_protocol_errors_total"
                    ).total()
                    == 1
                )


class _SlowCommitService:
    """Duck-typed service whose commits are slow: exposes multiplexing."""

    version = 7

    def __init__(self, commit_seconds=0.4):
        self.commit_seconds = commit_seconds
        self.metrics_registry = None

    def open_session(self, name):
        return SimpleNamespace(session_id="s1", name=name or "anon")

    def close_session(self, session_id):
        pass

    def commit(self, session_id, executed, label=""):
        time.sleep(self.commit_seconds)
        return SimpleNamespace(commit_index=1, version=8, batch_size=1, new_sources=0)


class TestMultiplexing:
    def test_responses_return_out_of_order_on_one_connection(self):
        service = _SlowCommitService(commit_seconds=0.5)
        with AsyncTransportServer(service) as server:
            connection = TransportConnection(*server.address)
            try:
                opened = connection.request({"op": "open_session", "name": "p"})
                order = []

                def commit():
                    connection.request(
                        {
                            "op": "commit",
                            "session_id": opened["session_id"],
                            "label": "slow",
                            "workload": EMPTY_WORKLOAD,
                        },
                        timeout_s=30.0,
                    )
                    order.append("commit")

                worker = threading.Thread(target=commit)
                worker.start()
                time.sleep(0.1)  # the commit frame is on the wire first
                connection.request({"op": "ping"}, timeout_s=30.0)
                order.append("ping")
                worker.join(timeout=30.0)
                # the ping overtook the half-second commit: pipelining works
                assert order == ["ping", "commit"]
            finally:
                connection.close()

    def test_many_concurrent_requests_on_one_connection(self):
        service = _SlowCommitService(commit_seconds=0.05)
        with AsyncTransportServer(service, max_workers=8) as server:
            connection = TransportConnection(*server.address)
            try:
                results = []
                errors = []

                def commit(index):
                    try:
                        response = connection.request(
                            {
                                "op": "commit",
                                "session_id": "s1",
                                "label": str(index),
                                "workload": EMPTY_WORKLOAD,
                            },
                            timeout_s=30.0,
                        )
                        results.append(response["version"])
                    except Exception as error:  # noqa: BLE001 - surfaced below
                        errors.append(error)

                threads = [
                    threading.Thread(target=commit, args=(i,)) for i in range(16)
                ]
                started = time.perf_counter()
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=30.0)
                elapsed = time.perf_counter() - started
                assert not errors
                assert len(results) == 16
                # 16 sequential 50ms commits would take 0.8s; pipelined
                # across 8 workers they must land well under that
                assert elapsed < 0.8
            finally:
                connection.close()
        inflight_peak = server.metrics_registry.gauge(
            "repro_transport_inflight_peak"
        ).value()
        assert inflight_peak >= 2
