"""Wire codec properties: round trips over dtypes, endianness, dedup."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dataframe import DataFrame
from repro.transport.codec import (
    BinaryWireCodec,
    ColumnLedger,
    JsonWireCodec,
    encoded_size,
    make_codec,
)
from repro.transport.errors import ProtocolError, StaleColumnReferenceError
from repro.transport.wire import decode_payload, encode_payload

#: both byte orders on purpose — the wire must not care where it was written
NUMERIC_DTYPES = (
    "<i1",
    "<i2",
    "<i4",
    "<i8",
    "<u2",
    "<u8",
    "<f4",
    "<f8",
    ">i4",
    ">i8",
    ">f4",
    ">f8",
    "?",
)


def roundtrip(message, ledger_in=None, ledger_out=None):
    encoder = BinaryWireCodec(ledger_in)
    decoder = BinaryWireCodec(ledger_out)
    parts = encoder.encode(message)
    return decoder.decode(memoryview(b"".join(bytes(part) for part in parts)))


@st.composite
def numeric_arrays(draw):
    dtype = np.dtype(draw(st.sampled_from(NUMERIC_DTYPES)))
    n = draw(st.integers(min_value=0, max_value=40))
    if dtype.kind == "b":
        values = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    elif dtype.kind in "iu":
        info = np.iinfo(dtype)
        values = draw(
            st.lists(
                st.integers(min_value=int(info.min), max_value=int(info.max)),
                min_size=n,
                max_size=n,
            )
        )
    else:
        width = 32 if dtype.itemsize == 4 else 64
        values = draw(
            st.lists(
                st.floats(allow_nan=True, allow_infinity=True, width=width),
                min_size=n,
                max_size=n,
            )
        )
    return np.array(values, dtype=dtype)


@st.composite
def string_arrays(draw):
    values = draw(st.lists(st.text(max_size=24), max_size=24))
    return np.array(values, dtype=object)


class TestBinaryRoundtrip:
    @settings(max_examples=60, deadline=None)
    @given(numeric_arrays())
    def test_numeric_arrays_roundtrip_bit_exact(self, values):
        decoded = roundtrip({"leaf": values})["leaf"]
        assert decoded.dtype == values.dtype  # endianness preserved
        assert decoded.shape == values.shape
        np.testing.assert_array_equal(decoded, values)

    @settings(max_examples=40, deadline=None)
    @given(string_arrays())
    def test_object_string_columns_roundtrip(self, values):
        record = {"name": "s", "dtype": "object", "column_id": "cid-1", "values": values}
        decoded = roundtrip({"columns": [record]})["columns"][0]
        assert decoded["values"].dtype == object
        assert list(decoded["values"]) == list(values)

    @settings(max_examples=30, deadline=None)
    @given(numeric_arrays(), st.text(min_size=1, max_size=8))
    def test_column_records_keep_their_lineage_id(self, values, column_id):
        record = {
            "name": "c",
            "dtype": str(values.dtype),
            "column_id": column_id,
            "values": values,
        }
        decoded = roundtrip({"columns": [record]})["columns"][0]
        assert decoded["column_id"] == column_id
        np.testing.assert_array_equal(decoded["values"], values)

    def test_multidimensional_arrays_keep_shape(self):
        values = np.arange(24.0).reshape(2, 3, 4)
        decoded = roundtrip({"x": values})["x"]
        assert decoded.shape == (2, 3, 4)
        np.testing.assert_array_equal(decoded, values)

    def test_empty_message_and_empty_arrays(self):
        assert roundtrip({}) == {}
        decoded = roundtrip({"empty": np.array([], dtype="<f8")})["empty"]
        assert decoded.size == 0 and decoded.dtype == np.dtype("<f8")
        decoded = roundtrip(
            {"columns": [{"name": "e", "dtype": "object", "column_id": "c0",
                          "values": np.array([], dtype=object)}]}
        )
        assert list(decoded["columns"][0]["values"]) == []

    def test_scalars_and_nested_structure_pass_through(self):
        message = {
            "op": "plan",
            "nested": {"list": [1, 2.5, None, True, "s"], "np": np.float64(3.5)},
        }
        decoded = roundtrip(message)
        assert decoded["op"] == "plan"
        assert decoded["nested"]["list"] == [1, 2.5, None, True, "s"]
        assert decoded["nested"]["np"] == 3.5

    def test_noncontiguous_arrays_are_made_contiguous(self):
        values = np.arange(20.0)[::2]
        decoded = roundtrip({"x": values})["x"]
        np.testing.assert_array_equal(decoded, values)


class TestDedup:
    def record(self, column_id="col-a", n=64):
        return {
            "name": "x",
            "dtype": "float64",
            "column_id": column_id,
            "values": np.arange(float(n)),
        }

    def test_second_ship_of_a_column_is_a_reference(self):
        sender_ledger, receiver_ledger = ColumnLedger(), ColumnLedger()
        sender = BinaryWireCodec(sender_ledger)
        receiver = BinaryWireCodec(receiver_ledger)

        first = sender.encode({"c": self.record()})
        second = sender.encode({"c": self.record()})
        assert sender.refs_sent == 1
        assert sender.ref_bytes_saved == 64 * 8
        assert encoded_size(second) < encoded_size(first)

        out1 = receiver.decode(memoryview(b"".join(bytes(p) for p in first)))
        out2 = receiver.decode(memoryview(b"".join(bytes(p) for p in second)))
        np.testing.assert_array_equal(out1["c"]["values"], out2["c"]["values"])

    def test_reference_to_unknown_column_raises(self):
        sender = BinaryWireCodec(ColumnLedger())
        sender.encode({"c": self.record()})  # primes the sender's ledger only
        ref_frame = sender.encode({"c": self.record()})
        fresh_receiver = BinaryWireCodec(ColumnLedger())
        with pytest.raises(StaleColumnReferenceError):
            fresh_receiver.decode(memoryview(b"".join(bytes(p) for p in ref_frame)))

    def test_no_ledger_means_no_dedup(self):
        sender = BinaryWireCodec(None)
        sender.encode({"c": self.record()})
        sender.encode({"c": self.record()})
        assert sender.refs_sent == 0

    def test_decoded_columns_enter_the_receiver_ledger(self):
        # receiver can itself reference a column it only ever received
        a_ledger, b_ledger = ColumnLedger(), ColumnLedger()
        a, b = BinaryWireCodec(a_ledger), BinaryWireCodec(b_ledger)
        frame = a.encode({"c": self.record()})
        b.decode(memoryview(b"".join(bytes(p) for p in frame)))
        reply = b.encode({"c": self.record()})
        assert b.refs_sent == 1
        decoded = a.decode(memoryview(b"".join(bytes(p) for p in reply)))
        np.testing.assert_array_equal(decoded["c"]["values"], np.arange(64.0))


class TestMalformedBodies:
    def test_truncated_envelope_raises_protocol_error(self):
        with pytest.raises(ProtocolError):
            BinaryWireCodec().decode(memoryview(b"\x00"))

    def test_meta_longer_than_body_raises(self):
        import struct as struct_mod

        body = struct_mod.pack(">BII", 0, 0, 100) + b"{}"
        with pytest.raises(ProtocolError):
            BinaryWireCodec().decode(memoryview(body))

    def test_buffer_lengths_beyond_body_raise(self):
        import json as json_mod
        import struct as struct_mod

        meta = json_mod.dumps({"x": {"__nd__": [0, "<f8", [4]]}}).encode()
        body = (
            struct_mod.pack(">BIII", 1, 1, 32, len(meta)) + meta + b"\x00" * 8
        )
        with pytest.raises(ProtocolError):
            BinaryWireCodec().decode(memoryview(body))

    def test_marker_flag_skips_resolution_for_plain_messages(self):
        parts = BinaryWireCodec().encode({"op": "plan", "session_id": "s1"})
        assert bytes(parts[0])[0] == 0  # no markers: flags byte clear
        parts = BinaryWireCodec().encode({"x": np.arange(3.0)})
        assert bytes(parts[0])[0] == 1

    def test_bad_json_fallback_raises(self):
        with pytest.raises(ProtocolError):
            JsonWireCodec().decode(memoryview(b"not json"))

    def test_unknown_codec_name_raises(self):
        with pytest.raises(ValueError):
            make_codec("msgpack")


class TestPayloadBridge:
    """wire.encode_payload trees survive both codecs identically."""

    @settings(max_examples=25, deadline=None)
    @given(numeric_arrays())
    def test_dataframe_payloads_roundtrip_through_both_codecs(self, values):
        frame = DataFrame({"x": np.asarray(values, dtype="<f8")})
        tree = encode_payload(frame)
        for codec_name in ("binary", "json"):
            codec = make_codec(codec_name)
            parts = codec.encode({"payload": tree})
            decoder = make_codec(codec_name)
            decoded_tree = decoder.decode(
                memoryview(b"".join(bytes(p) for p in parts))
            )["payload"]
            decoded = decode_payload(decoded_tree)
            assert decoded.column_ids == frame.column_ids
            np.testing.assert_array_equal(
                decoded.column("x").values, frame.column("x").values
            )

    def test_binary_beats_json_on_numeric_bulk(self):
        rng = np.random.default_rng(11)
        frame = DataFrame(
            {"x": rng.standard_normal(4096), "y": rng.standard_normal(4096)}
        )
        tree = {"payload": encode_payload(frame)}
        binary_size = encoded_size(BinaryWireCodec().encode(tree))
        json_size = encoded_size(JsonWireCodec().encode(tree))
        assert json_size / binary_size >= 2.0

    def test_dedup_repeat_ship_beats_json_by_5x(self):
        # the steady-state EG exchange: the same source columns cross the
        # wire on every commit — binary ships bytes once, then references
        rng = np.random.default_rng(13)
        frame = DataFrame(
            {"x": rng.standard_normal(4096), "y": rng.standard_normal(4096)}
        )
        tree = {"payload": encode_payload(frame)}
        binary = BinaryWireCodec(ColumnLedger())
        json_codec = JsonWireCodec()
        binary_total = sum(encoded_size(binary.encode(tree)) for _ in range(4))
        json_total = sum(encoded_size(json_codec.encode(tree)) for _ in range(4))
        assert json_total / binary_total >= 5.0
