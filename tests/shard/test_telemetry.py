"""Sharded service telemetry: one plane at the coordinator, shard rollups."""

from repro.materialization.simple import MaterializeAll
from repro.obs.plane import FlightRecorder
from repro.obs.trace import NoopTracer, get_tracer
from repro.shard import ShardedEGService


class TestShardedTelemetry:
    def test_one_recorder_at_the_coordinator(self):
        service = ShardedEGService(
            lambda _i: MaterializeAll(), 2, background=True
        )
        try:
            assert service.flight_recorder is not None
            assert service.slo_engine is not None
            # shards never run their own plane: one recorder, one tracer
            assert all(shard.flight_recorder is None for shard in service.shards)
            assert get_tracer().enabled
        finally:
            service.stop()
        assert isinstance(get_tracer(), NoopTracer)

    def test_health_rolls_up_per_shard_queues(self):
        service = ShardedEGService(
            lambda _i: MaterializeAll(), 3, background=True
        )
        try:
            health = service.health()
            assert health["status"] == "ok"
            assert len(health["shards"]) == 3
            assert health["queue"]["capacity"] == sum(
                shard["queue"]["capacity"] for shard in health["shards"]
            )
            assert all(shard["status"] == "ok" for shard in health["shards"])
        finally:
            service.stop()
        assert service.health()["status"] == "stopped"

    def test_debug_info_includes_shard_stats(self):
        recorder = FlightRecorder(slow_threshold_s=0.0, head_sample_every=0)
        service = ShardedEGService(
            lambda _i: MaterializeAll(),
            2,
            background=True,
            flight_recorder=recorder,
        )
        try:
            info = service.debug_info()
            assert len(info["shards"]) == 2
            assert {"shard", "queue_depth", "batches"} <= set(info["shards"][0])
            assert info["alerts"] == []
        finally:
            service.stop()

    def test_recorder_false_stays_dark(self):
        service = ShardedEGService(
            lambda _i: MaterializeAll(), 2, background=True, flight_recorder=False
        )
        try:
            assert service.flight_recorder is None
            assert isinstance(get_tracer(), NoopTracer)
        finally:
            service.stop()
