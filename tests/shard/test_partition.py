"""PartitionedExperimentGraph: splitting, stubs, and composition laws."""

import numpy as np
import pytest

from repro.dataframe import DataFrame
from repro.eg.graph import ExperimentGraph
from repro.experiments.swarm import eg_fingerprint
from repro.graph.dag import WorkloadDAG
from repro.graph.operations import DataOperation
from repro.shard import PartitionedExperimentGraph, balanced_source_names


class Step(DataOperation):
    def __init__(self, tag):
        super().__init__("step", params={"tag": tag})

    def run(self, underlying_data):
        return underlying_data


class Join(DataOperation):
    def __init__(self, tag=0):
        super().__init__("join", params={"tag": tag})

    def run(self, underlying_data):
        return underlying_data[0]


def frame(offset: float = 0.0) -> DataFrame:
    return DataFrame({"x": np.arange(4.0) + offset})


NAMES = balanced_source_names(4, 4)


def chain_workload(group: int, depth: int) -> WorkloadDAG:
    dag = WorkloadDAG()
    current = dag.add_source(NAMES[group], payload=frame(group))
    for step in range(depth):
        current = dag.add_operation([current], Step((group, step)))
        dag.vertex(current).record_result(frame(group + step), compute_time=0.5)
    dag.mark_terminal(current)
    return dag


def join_workload(left_group: int, right_group: int, depth: int = 2) -> WorkloadDAG:
    dag = WorkloadDAG()
    left = dag.add_source(NAMES[left_group], payload=frame(left_group))
    for step in range(depth):
        left = dag.add_operation([left], Step((left_group, step)))
        dag.vertex(left).record_result(frame(left_group + step), compute_time=0.5)
    right = dag.add_source(NAMES[right_group], payload=frame(right_group))
    joined = dag.add_operation([left, right], Join((left_group, right_group)))
    dag.vertex(joined).record_result(frame(9.0), compute_time=1.5)
    dag.mark_terminal(joined)
    return dag


def workload_set() -> list[WorkloadDAG]:
    workloads = [chain_workload(group, depth=2 + group % 2) for group in range(4)]
    workloads.append(join_workload(0, 1))
    workloads.append(join_workload(2, 3, depth=3))
    workloads.append(join_workload(1, 2))
    return workloads


def flat_replay(workloads) -> ExperimentGraph:
    eg = ExperimentGraph()
    for workload in workloads:
        eg.union_workload(workload)
    return eg


class TestSplit:
    def test_pieces_partition_the_vertex_set(self):
        peg = PartitionedExperimentGraph(4)
        split = peg.split(join_workload(0, 1))
        piece_vertices = [set(p.graph.nodes) for p in split.pieces.values()]
        merged = set().union(*piece_vertices)
        assert merged == set(join_workload(0, 1).graph.nodes)
        for index, a in enumerate(piece_vertices):
            for b in piece_vertices[index + 1 :]:
                assert not (a & b)

    def test_cross_edges_become_stubs_not_piece_edges(self):
        peg = PartitionedExperimentGraph(4)
        workload = join_workload(0, 1)
        split = peg.split(workload)
        piece_edges = sum(p.graph.number_of_edges() for p in split.pieces.values())
        assert piece_edges + len(split.stubs) == workload.graph.number_of_edges()
        for stub in split.stubs:
            assert stub.src_partition != stub.dst_partition
        assert peg.stub_count == len(split.stubs) > 0

    def test_repeated_split_does_not_duplicate_stubs(self):
        peg = PartitionedExperimentGraph(4)
        peg.split(join_workload(0, 1))
        count = peg.stub_count
        peg.split(join_workload(0, 1))
        assert peg.stub_count == count

    def test_single_partition_has_no_stubs(self):
        peg = PartitionedExperimentGraph(1)
        peg.union_workload(join_workload(0, 1))
        assert peg.stub_count == 0
        assert peg.partition_vertex_counts()[0] == peg.num_vertices


class TestComposition:
    def test_flatten_is_bit_identical_to_flat_union(self):
        workloads = workload_set()
        peg = PartitionedExperimentGraph(4)
        for workload in workloads:
            peg.union_workload(workload)
        flat = flat_replay(workload_set())
        assert eg_fingerprint(peg.flatten()) == eg_fingerprint(flat)

    def test_workload_counter_matches_flat_graph(self):
        workloads = workload_set()
        peg = PartitionedExperimentGraph(4)
        for workload in workloads:
            peg.union_workload(workload)
        assert peg.workloads_observed == len(workloads)
        assert peg.flatten().workloads_observed == len(workloads)

    def test_stitched_recreation_costs_match_flat_pass(self):
        peg = PartitionedExperimentGraph(4)
        for workload in workload_set():
            peg.union_workload(workload)
        assert peg.recreation_costs() == peg.flatten().recreation_costs()

    def test_stitched_potentials_match_flat_pass(self):
        peg = PartitionedExperimentGraph(4)
        for workload in workload_set():
            peg.union_workload(workload)
        assert peg.potentials() == peg.flatten().potentials()

    def test_vertex_resolution_through_owner_map(self):
        peg = PartitionedExperimentGraph(4)
        peg.union_workload(join_workload(0, 1))
        flat = peg.flatten()
        for record in flat.vertices():
            owner = peg.partition_of(record.vertex_id)
            assert owner is not None
            assert record.vertex_id in peg
            assert peg.vertex(record.vertex_id).vertex_id == record.vertex_id

    def test_unknown_vertex_raises(self):
        peg = PartitionedExperimentGraph(2)
        assert peg.partition_of("no-such-vertex") is None
        with pytest.raises(KeyError):
            peg.vertex("no-such-vertex")


class TestConstruction:
    def test_rejects_bad_partition_counts(self):
        with pytest.raises(ValueError, match="n_partitions"):
            PartitionedExperimentGraph(0)
        with pytest.raises(ValueError, match="partitions list"):
            PartitionedExperimentGraph(2, partitions=[ExperimentGraph()])
