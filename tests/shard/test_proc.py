"""ProcessShardCoordinator: worker processes, crash containment, convergence."""

import threading

import numpy as np
import pytest

from repro.dataframe import DataFrame
from repro.eg.graph import ExperimentGraph
from repro.eg.updater import Updater
from repro.experiments.swarm import eg_fingerprint
from repro.graph.dag import WorkloadDAG
from repro.graph.operations import DataOperation
from repro.materialization.simple import MaterializeAll
from repro.service.errors import ShardUnavailableError
from repro.shard import ProcessShardCoordinator, balanced_source_names

NAMES = balanced_source_names(2, 2)


class Step(DataOperation):
    def __init__(self, tag):
        super().__init__("proc-step", params={"tag": tag})

    def run(self, underlying_data):
        return underlying_data


class Join(DataOperation):
    def __init__(self, tag=0):
        super().__init__("proc-join", params={"tag": tag})

    def run(self, underlying_data):
        return underlying_data[0]


def frame(offset: float = 0.0) -> DataFrame:
    return DataFrame({"x": np.arange(4.0) + offset})


def make_workload(group: int, k: int, cross: bool = False) -> WorkloadDAG:
    dag = WorkloadDAG()
    current = dag.add_source(NAMES[group], payload=frame(float(group)))
    for level in range(3):
        current = dag.add_operation([current], Step((group, k, level)))
        dag.vertex(current).record_result(frame(float(level)), compute_time=0.001)
    if cross:
        other = dag.add_source(NAMES[(group + 1) % 2], payload=frame(1.0))
        current = dag.add_operation([current, other], Join((group, k)))
        dag.vertex(current).record_result(frame(9.0), compute_time=0.01)
    dag.mark_terminal(current)
    return dag


def sequential_replay(workloads) -> ExperimentGraph:
    eg = ExperimentGraph()
    updater = Updater(eg, MaterializeAll())
    for dag in workloads:
        updater.update(dag)
    return eg


class TestProcessShardCoordinator:
    def test_roundtrip_and_stitched_planning(self) -> None:
        coordinator = ProcessShardCoordinator(2, flight_recorder=False)
        try:
            session = coordinator.open_session("roundtrip")
            first = coordinator.commit(
                session.session_id, make_workload(0, 1), label="w1"
            )
            assert first.commit_index == 1
            second = coordinator.commit(
                session.session_id, make_workload(1, 1), label="w2"
            )
            assert second.commit_index == 2
            cross = coordinator.commit(
                session.session_id, make_workload(0, 1, cross=True), label="w3"
            )
            assert sorted(cross.shard_results) == [0, 1]
            assert coordinator.version >= 2

            # Planning: single-shard forwards to the home worker, cross-shard
            # stitches remote snapshot summaries.  Both must return a usable
            # plan object (loads may be empty when every vertex has a
            # recorded result — parity with the in-process service).
            single = coordinator.plan(session.session_id, make_workload(0, 1))
            assert single.version >= 1
            assert single.result.plan is not None
            stitched = coordinator.plan(
                session.session_id, make_workload(0, 1, cross=True)
            )
            assert stitched.result.plan is not None
            stitched.release()
            single.release()

            stats = coordinator.stats()
            assert stats.merged_workloads >= 3
            health = coordinator.health()
            assert health["status"] == "ok"
            assert [shard["status"] for shard in health["shards"]] == ["ok", "ok"]
            assert len(health["workers"]) == 2
            assert all(worker["alive"] for worker in health["workers"])
            rendered = coordinator.metrics_text()
            assert "repro_proc_worker_up" in rendered
            assert "# source: shard0 worker" in rendered
            coordinator.close_session(session.session_id)
        finally:
            coordinator.stop()
        flat = coordinator.flatten()
        replay = sequential_replay(
            [make_workload(0, 1), make_workload(1, 1), make_workload(0, 1, cross=True)]
        )
        assert eg_fingerprint(flat) == eg_fingerprint(replay)
        assert flat.materialized_ids() == replay.materialized_ids()

    def test_concurrent_commits_converge_gap_free(self) -> None:
        coordinator = ProcessShardCoordinator(2, flight_recorder=False)
        n_workloads = 12
        errors: list[BaseException] = []
        try:

            def tenant(worker: int) -> None:
                try:
                    session = coordinator.open_session(f"tenant-{worker}")
                    for index in range(worker, n_workloads, 3):
                        coordinator.commit(
                            session.session_id,
                            make_workload(index % 2, index, cross=index % 4 == 3),
                            label=str(index),
                        )
                    coordinator.close_session(session.session_id)
                except BaseException as error:  # noqa: BLE001 - surfaced after join
                    errors.append(error)

            threads = [threading.Thread(target=tenant, args=(w,)) for w in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            coordinator.stop()
        assert not errors
        log = coordinator.commit_log()
        assert len(log) == n_workloads
        assert [record.commit_index for record in log] == list(
            range(1, n_workloads + 1)
        )
        flat = coordinator.flatten()
        replay = sequential_replay(
            [
                make_workload(int(record.label) % 2, int(record.label),
                              cross=int(record.label) % 4 == 3)
                for record in log
            ]
        )
        assert eg_fingerprint(flat) == eg_fingerprint(replay)

    def test_worker_crash_typed_error_and_restart_rejoins(self) -> None:
        coordinator = ProcessShardCoordinator(
            2, flight_recorder=False, checkpoint_every=1
        )
        try:
            session = coordinator.open_session("crash")
            coordinator.commit(session.session_id, make_workload(0, 1), label="a")
            coordinator.commit(session.session_id, make_workload(1, 1), label="b")

            coordinator.workers[1].kill()

            # The healthy shard keeps committing.
            result = coordinator.commit(
                session.session_id, make_workload(0, 2), label="c"
            )
            assert result.commit_index == 3
            # The dead shard raises the typed error before an index is burned.
            with pytest.raises(ShardUnavailableError):
                coordinator.commit(session.session_id, make_workload(1, 2))
            health = coordinator.health()
            assert health["status"] == "degraded"
            assert [shard["status"] for shard in health["shards"]] == [
                "ok",
                "unavailable",
            ]

            # Restart: the worker reopens its checkpointed partition and
            # rejoins; commits to that shard succeed again.
            coordinator.restart_worker(1)
            rejoined = coordinator.commit(
                session.session_id, make_workload(1, 2), label="d"
            )
            assert rejoined.commit_index == 4
            assert coordinator.health()["status"] == "ok"
        finally:
            coordinator.stop()
        flat = coordinator.flatten()
        replay = sequential_replay(
            [
                make_workload(0, 1),
                make_workload(1, 1),
                make_workload(0, 2),
                make_workload(1, 2),
            ]
        )
        assert eg_fingerprint(flat) == eg_fingerprint(replay)
