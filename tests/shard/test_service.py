"""ShardedEGService: routed commits, stitched planning, convergence."""

import random
import threading
import time

import numpy as np
import pytest

from repro.dataframe import DataFrame
from repro.eg.graph import ExperimentGraph
from repro.eg.storage import StorageTier
from repro.eg.updater import Updater
from repro.experiments.swarm import eg_fingerprint
from repro.graph.dag import WorkloadDAG
from repro.graph.operations import DataOperation
from repro.materialization.simple import MaterializeAll
from repro.service.errors import ServiceStoppedError, UnknownSessionError
from repro.shard import ShardedEGService, balanced_source_names


class Step(DataOperation):
    def __init__(self, tag):
        super().__init__("step", params={"tag": tag})

    def run(self, underlying_data):
        return underlying_data


class Join(DataOperation):
    def __init__(self, tag=0):
        super().__init__("join", params={"tag": tag})

    def run(self, underlying_data):
        return underlying_data[0]


NAMES = balanced_source_names(4, 4)


def frame(offset: float = 0.0) -> DataFrame:
    return DataFrame({"x": np.arange(4.0) + offset})


def make_workload(index: int, executed: bool = True) -> WorkloadDAG:
    """Deterministic workload ``index``: a chain, every third one a join.

    ``executed=True`` records results (the shape ``submit_update`` sees);
    ``executed=False`` leaves the same DAG uncomputed for planning tests.
    """
    rng = random.Random(1000 + index)
    group = rng.randrange(4)
    dag = WorkloadDAG()
    current = dag.add_source(NAMES[group], payload=frame(group))
    for step in range(rng.randrange(1, 4)):
        current = dag.add_operation([current], Step((group, step)))
        if executed:
            dag.vertex(current).record_result(
                frame(group + step), compute_time=0.25 * (step + 1)
            )
    if index % 3 == 2:
        other_group = (group + 1 + rng.randrange(3)) % 4
        other = dag.add_source(NAMES[other_group], payload=frame(other_group))
        current = dag.add_operation(
            [current, other], Join((group, other_group))
        )
        if executed:
            dag.vertex(current).record_result(frame(8.0), compute_time=1.0)
    dag.mark_terminal(current)
    return dag


def sequential_replay(labels: list[str]) -> ExperimentGraph:
    """Single-shard replay of the committed workloads in commit order."""
    eg = ExperimentGraph()
    updater = Updater(eg, MaterializeAll())
    for label in labels:
        updater.update(make_workload(int(label)))
    return eg


class TestRoutedCommit:
    def test_commit_indices_are_gap_free_and_version_monotone(self):
        with ShardedEGService(lambda _i: MaterializeAll(), 4) as service:
            session = service.open_session("writer")
            versions = []
            for index in range(6):
                result = service.commit(
                    session.session_id, make_workload(index), label=str(index)
                )
                assert result.commit_index == index + 1
                versions.append(result.version)
            assert versions == sorted(versions)
            log = service.commit_log()
            assert [record.commit_index for record in log] == list(range(1, 7))

    def test_cross_shard_commit_fans_out_to_every_involved_shard(self):
        with ShardedEGService(lambda _i: MaterializeAll(), 4) as service:
            session = service.open_session("writer")
            result = service.commit(session.session_id, make_workload(2), label="2")
            assert len(result.shard_results) >= 2
            assert service.partitioned.stub_count > 0

    def test_requires_open_session(self):
        with ShardedEGService(lambda _i: MaterializeAll(), 2) as service:
            with pytest.raises(UnknownSessionError):
                service.commit("c9999", make_workload(0))

    def test_stopped_service_rejects_commits(self):
        service = ShardedEGService(lambda _i: MaterializeAll(), 2)
        session = service.open_session("writer")
        service.stop()
        with pytest.raises(ServiceStoppedError):
            service.commit(session.session_id, make_workload(0))


class TestStitchedPlanning:
    def test_single_shard_plan_delegates_to_shard_cache(self):
        with ShardedEGService(lambda _i: MaterializeAll(), 4) as service:
            session = service.open_session("planner")
            workload = make_workload(0)  # pure chain: one lineage group
            service.commit(session.session_id, workload, label="seed")
            fresh = make_workload(0, executed=False)
            with service.plan(session.session_id, fresh) as plan:
                assert plan.result.plan.loads  # materialized chain is reused
            with service.plan(session.session_id, make_workload(0, executed=False)):
                pass
            stats = service.stats()
            assert stats.plan_cache_hits >= 1

    def test_cross_shard_plan_prices_remote_artifacts_cold(self):
        with ShardedEGService(lambda _i: MaterializeAll(), 4) as service:
            session = service.open_session("planner")
            join = make_workload(2)
            service.commit(session.session_id, join, label="seed")
            with service.plan(
                session.session_id, make_workload(2, executed=False)
            ) as plan:
                snapshot = plan.eg
                home = snapshot.home
                remote_tiers = {
                    snapshot.tier_of(vertex_id)
                    for vertex_id in snapshot.materialized_ids()
                    if snapshot.owner_of(vertex_id) != home
                }
                assert remote_tiers == {StorageTier.COLD}
                assert plan.result.plan.loads
            text = service.metrics_text()
            assert "repro_shard_cross_shard_commits_total 1" in text
            assert "repro_shard_remote_planned_loads_total" in text

    def test_span_histogram_and_routed_counters(self):
        with ShardedEGService(lambda _i: MaterializeAll(), 4) as service:
            session = service.open_session("writer")
            for index in range(4):
                service.commit(session.session_id, make_workload(index))
            text = service.metrics_text()
            assert "repro_shard_routed_workloads_total" in text
            assert "repro_shard_workload_span_count 4" in text
            assert "repro_shard_stub_edges_total" in text


class TestAggregatedStats:
    def test_merged_pieces_and_queue_columns_aggregate(self):
        with ShardedEGService(lambda _i: MaterializeAll(), 4) as service:
            session = service.open_session("writer")
            for index in range(6):
                service.commit(session.session_id, make_workload(index))
            per_shard = service.shard_stats()
            combined = service.stats()
            assert combined.merged_workloads == sum(
                stats.merged_workloads for stats in per_shard
            )
            assert combined.publishes == sum(stats.publishes for stats in per_shard)
            assert combined.queue_capacity == sum(
                stats.queue_capacity for stats in per_shard
            )
            assert combined.commits_total == 6  # coordinator counts workloads once

    def test_session_mirroring_and_close(self):
        with ShardedEGService(lambda _i: MaterializeAll(), 2) as service:
            session = service.open_session("tenant")
            for shard in service.shards:
                assert shard.stats().open_sessions == 1
            service.close_session(session.session_id)
            for shard in service.shards:
                assert shard.stats().open_sessions == 0


class TestConvergence:
    def test_sequential_commits_converge_bit_identical(self):
        with ShardedEGService(lambda _i: MaterializeAll(), 4) as service:
            session = service.open_session("writer")
            for index in range(12):
                service.commit(
                    session.session_id, make_workload(index), label=str(index)
                )
            labels = [record.label for record in service.commit_log()]
            flat = service.flatten()
        replay = sequential_replay(labels)
        assert eg_fingerprint(flat) == eg_fingerprint(replay)
        assert flat.materialized_ids() == replay.materialized_ids()
        assert flat.recreation_costs() == replay.recreation_costs()

    def test_randomized_concurrent_commits_converge_bit_identical(self):
        """The equivalence gate: K workloads committed from concurrent
        tenants through background per-shard merge workers must leave the
        partitioned EG bit-identical — vertices, utilities, materialized
        set — to a sequential single-shard replay in commit order."""
        n_workloads = 24
        service = ShardedEGService(
            lambda _i: MaterializeAll(),
            4,
            background=True,
            batch_linger_s=0.005,
        )
        errors: list[BaseException] = []

        def tenant(worker: int) -> None:
            try:
                session = service.open_session(f"tenant-{worker}")
                for index in range(worker, n_workloads, 4):
                    service.commit(
                        session.session_id, make_workload(index), label=str(index)
                    )
                service.close_session(session.session_id)
            except BaseException as error:  # noqa: BLE001 - surfaced after join
                errors.append(error)

        threads = [threading.Thread(target=tenant, args=(w,)) for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        service.stop()
        assert not errors
        labels = [record.label for record in service.commit_log()]
        assert len(labels) == n_workloads
        flat = service.flatten()
        replay = sequential_replay(labels)
        assert eg_fingerprint(flat) == eg_fingerprint(replay)
        assert flat.materialized_ids() == replay.materialized_ids()
        assert flat.recreation_costs() == replay.recreation_costs()
        assert flat.potentials() == replay.potentials()


class TestStopDeadline:
    def test_stop_shares_one_timeout_budget_across_shards(self):
        """Regression: ``stop(timeout=T)`` must bound the WHOLE stop.

        Each shard receives whatever budget the shards before it left
        over, so the recorded per-shard timeouts decrease instead of
        every shard getting the full ``T`` (which would multiply the
        deadline by the shard count).
        """
        service = ShardedEGService(lambda _i: MaterializeAll(), 3)
        budgets: list[float] = []
        for shard in service.shards:
            original = shard.stop

            def recording_stop(drain=True, timeout=30.0, _original=original):
                budgets.append(timeout)
                time.sleep(0.05)
                _original(drain=drain, timeout=timeout)

            shard.stop = recording_stop
        service.stop(timeout=2.0)
        assert len(budgets) == 3
        assert all(budget <= 2.0 for budget in budgets)
        # strictly decreasing: each shard consumed part of the shared budget
        assert budgets[0] > budgets[1] > budgets[2]
        assert budgets[0] - budgets[2] >= 0.05
