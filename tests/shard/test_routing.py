"""Root-lineage routing: fingerprints, shard assignment, cross edges."""

import pytest

from repro.graph.dag import WorkloadDAG, source_vertex_id
from repro.graph.operations import DataOperation
from repro.shard import (
    balanced_source_names,
    lineage_fingerprint,
    route_workload,
    shard_of_source,
)


class Step(DataOperation):
    def __init__(self, tag):
        super().__init__("step", params={"tag": tag})

    def run(self, underlying_data):
        return underlying_data


class Join(DataOperation):
    def __init__(self):
        super().__init__("join")

    def run(self, underlying_data):
        return underlying_data[0]


def chain(source: str, depth: int = 3) -> WorkloadDAG:
    dag = WorkloadDAG()
    current = dag.add_source(source)
    for index in range(depth):
        current = dag.add_operation([current], Step(index))
    dag.mark_terminal(current)
    return dag


class TestLineageFingerprint:
    def test_deterministic_and_order_independent(self):
        a = lineage_fingerprint({"v1", "v2"})
        b = lineage_fingerprint(frozenset(["v2", "v1"]))
        assert a == b
        assert len(a) == 64

    def test_distinct_root_sets_distinct_fingerprints(self):
        assert lineage_fingerprint({"v1"}) != lineage_fingerprint({"v1", "v2"})

    def test_source_routing_is_stable_across_calls(self):
        assert shard_of_source("ds0", 4) == shard_of_source("ds0", 4)


class TestRouteWorkload:
    def test_single_chain_lands_on_one_shard(self):
        routed = route_workload(chain("solo"), 4)
        assert routed.involved_shards == [shard_of_source("solo", 4)]
        assert routed.cross_edges == []

    def test_same_lineage_routes_identically_across_workloads(self):
        first = route_workload(chain("shared", depth=2), 4)
        second = route_workload(chain("shared", depth=5), 4)
        for vertex_id, owner in first.owner.items():
            assert second.owner[vertex_id] == owner

    def test_join_output_unions_root_sets(self):
        names = balanced_source_names(2, 2)
        dag = WorkloadDAG()
        left = dag.add_source(names[0])
        right = dag.add_source(names[1])
        joined = dag.add_operation([left, right], Join())
        dag.mark_terminal(joined)
        routed = route_workload(dag, 2)
        union_fp = lineage_fingerprint(
            {source_vertex_id(names[0]), source_vertex_id(names[1])}
        )
        # the supernode and the join output both carry the union lineage
        assert routed.fingerprints[joined] == union_fp
        assert len(routed.involved_shards) >= 2

    def test_cross_edges_listed_only_across_partitions(self):
        names = balanced_source_names(2, 2)
        dag = WorkloadDAG()
        left = dag.add_source(names[0])
        right = dag.add_source(names[1])
        joined = dag.add_operation([left, right], Join())
        dag.mark_terminal(joined)
        routed = route_workload(dag, 2)
        for src, dst in routed.cross_edges:
            assert routed.owner[src] != routed.owner[dst]
        assert routed.cross_edges  # a 2-group join must cross at least once

    def test_home_shard_is_majority_owner(self):
        names = balanced_source_names(2, 2)
        dag = WorkloadDAG()
        left = dag.add_source(names[0])
        for index in range(4):
            left = dag.add_operation([left], Step(index))
        right = dag.add_source(names[1])
        joined = dag.add_operation([left, right], Join())
        dag.mark_terminal(joined)
        routed = route_workload(dag, 2)
        counts = routed.shard_vertex_counts()
        home = routed.home_shard()
        assert counts[home] == max(counts.values())

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="n_shards"):
            route_workload(chain("x"), 0)


class TestBalancedSourceNames:
    def test_groups_route_to_their_target_shard(self):
        names = balanced_source_names(8, 4)
        assert len(names) == len(set(names)) == 8
        for group, name in enumerate(names):
            assert shard_of_source(name, 4) == group % 4

    def test_deterministic(self):
        assert balanced_source_names(6, 3) == balanced_source_names(6, 3)

    def test_prefix_is_honoured(self):
        for name in balanced_source_names(3, 2, prefix="swarm"):
            assert name.startswith("swarm")
