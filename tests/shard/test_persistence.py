"""Partitioned EG persistence: stub round-trips through EG persistence v2."""

import json

import numpy as np
import pytest

from repro.dataframe import DataFrame
from repro.eg.graph import ExperimentGraph
from repro.eg.persistence import EGPersistenceError, load_eg, save_eg
from repro.experiments.swarm import eg_fingerprint
from repro.graph.dag import WorkloadDAG
from repro.graph.operations import DataOperation
from repro.shard import (
    PartitionedExperimentGraph,
    balanced_source_names,
    load_partitioned_eg,
    save_partitioned_eg,
)


class Step(DataOperation):
    def __init__(self, tag):
        super().__init__("step", params={"tag": tag})

    def run(self, underlying_data):
        return underlying_data


class Join(DataOperation):
    def __init__(self, tag=0):
        super().__init__("join", params={"tag": tag})

    def run(self, underlying_data):
        return underlying_data[0]


NAMES = balanced_source_names(4, 4)


def frame(offset: float = 0.0) -> DataFrame:
    return DataFrame({"x": np.arange(4.0) + offset})


def build_workloads() -> list[WorkloadDAG]:
    workloads = []
    for group in range(4):
        dag = WorkloadDAG()
        current = dag.add_source(NAMES[group], payload=frame(group))
        for step in range(2 + group % 2):
            current = dag.add_operation([current], Step((group, step)))
            dag.vertex(current).record_result(frame(group + step), compute_time=0.25)
        dag.mark_terminal(current)
        workloads.append(dag)
    for left, right in [(0, 1), (2, 3), (1, 2)]:
        dag = WorkloadDAG()
        a = dag.add_source(NAMES[left], payload=frame(left))
        a = dag.add_operation([a], Step((left, 0)))
        dag.vertex(a).record_result(frame(left), compute_time=0.25)
        b = dag.add_source(NAMES[right], payload=frame(right))
        joined = dag.add_operation([a, b], Join((left, right)))
        dag.vertex(joined).record_result(frame(7.0), compute_time=1.0)
        dag.mark_terminal(joined)
        workloads.append(dag)
    return workloads


def populated_peg() -> PartitionedExperimentGraph:
    peg = PartitionedExperimentGraph(4)
    for workload in build_workloads():
        peg.union_workload(workload)
    return peg


class TestRoundTrip:
    def test_structure_and_stub_registry_survive(self, tmp_path):
        peg = populated_peg()
        save_partitioned_eg(peg, tmp_path)
        restored = load_partitioned_eg(tmp_path)
        assert restored.n_partitions == peg.n_partitions
        assert restored.workloads_observed == peg.workloads_observed
        assert restored.partition_vertex_counts() == peg.partition_vertex_counts()
        original = {(s.src, s.dst): s for s in peg.stubs()}
        reloaded = {(s.src, s.dst): s for s in restored.stubs()}
        assert set(original) == set(reloaded)
        for key, stub in original.items():
            twin = reloaded[key]
            assert (twin.src_partition, twin.dst_partition) == (
                stub.src_partition,
                stub.dst_partition,
            )
            assert (twin.op_hash, twin.op_name, twin.order) == (
                stub.op_hash,
                stub.op_name,
                stub.order,
            )

    def test_stub_resolution_bit_identical_to_unpartitioned_graph(self, tmp_path):
        """The satellite check: reopen the partitioned EG and compare its
        flattened view — stub edges resolved back into real edges — against
        the unpartitioned graph round-tripped through EG persistence v2."""
        peg = populated_peg()
        flat = ExperimentGraph()
        for workload in build_workloads():
            flat.union_workload(workload)
        save_partitioned_eg(peg, tmp_path / "sharded")
        save_eg(flat, tmp_path / "flat")
        restored_flat = load_eg(tmp_path / "flat")
        restored_peg = load_partitioned_eg(tmp_path / "sharded")
        assert eg_fingerprint(restored_peg.flatten()) == eg_fingerprint(restored_flat)
        assert (
            restored_peg.recreation_costs() == restored_flat.recreation_costs()
        )
        assert restored_peg.potentials() == restored_flat.potentials()
        # ... and against the graphs that never left memory, so the check
        # cannot be satisfied by both sides dropping a field on reload
        assert eg_fingerprint(restored_peg.flatten()) == eg_fingerprint(
            peg.flatten()
        )
        assert eg_fingerprint(restored_flat) == eg_fingerprint(flat)

    def test_partitions_use_eg_persistence_v2_layout(self, tmp_path):
        peg = populated_peg()
        save_partitioned_eg(peg, tmp_path)
        for index in range(peg.n_partitions):
            document = json.loads(
                (tmp_path / f"partition{index}" / "graph.json").read_text()
            )
            assert document["version"] == 2

    def test_reloaded_graph_keeps_growing(self, tmp_path):
        peg = populated_peg()
        save_partitioned_eg(peg, tmp_path)
        restored = load_partitioned_eg(tmp_path)
        before = restored.workloads_observed
        dag = WorkloadDAG()
        current = dag.add_source(NAMES[0], payload=frame(0))
        current = dag.add_operation([current], Step("after-reload"))
        dag.vertex(current).record_result(frame(3.0), compute_time=0.25)
        dag.mark_terminal(current)
        restored.union_workload(dag)
        assert restored.workloads_observed == before + 1
        assert current in restored


class TestFailureModes:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(EGPersistenceError, match="manifest"):
            load_partitioned_eg(tmp_path / "nowhere")

    def test_corrupt_manifest(self, tmp_path):
        save_partitioned_eg(populated_peg(), tmp_path)
        (tmp_path / "manifest.json").write_text("{not json")
        with pytest.raises(EGPersistenceError, match="corrupt"):
            load_partitioned_eg(tmp_path)

    def test_unsupported_version(self, tmp_path):
        save_partitioned_eg(populated_peg(), tmp_path)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        manifest["version"] = 99
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(EGPersistenceError, match="version"):
            load_partitioned_eg(tmp_path)
