"""End-to-end tests for the CollaborativeOptimizer loop (paper Figure 2)."""

import numpy as np
import pytest

from repro.dataframe import DataFrame
from repro.eg.storage import DedupArtifactStore
from repro.materialization import (
    HeuristicMaterializer,
    MaterializeAll,
    MaterializeNone,
    StorageAwareMaterializer,
)
from repro.client.parser import parse_workload
from repro.graph.pruning import prune_workload
from repro.ml import GradientBoostingClassifier, LogisticRegression
from repro.reuse import AllMaterializedReuse, HelixReuse, LinearReuse, NoReuse
from repro.server.service import CollaborativeOptimizer
from repro.storage import TieredArtifactStore, TieredLoadCostModel


@pytest.fixture
def sources():
    rng = np.random.default_rng(1)
    frame = DataFrame(
        {
            "a": rng.normal(size=60),
            "b": rng.normal(size=60),
            "c": rng.normal(size=60),
            "y": (rng.random(60) > 0.5).astype(np.int64),
        }
    )
    return {"train": frame}


def basic_script(ws, sources):
    train = ws.source("train", sources["train"])
    X = train[["a", "b", "c"]]
    y = train["y"]
    model = X.fit(LogisticRegression(max_iter=10), y=y, scorer="train_auc")
    model.terminal()


def modified_script(ws, sources):
    """Shares the feature prefix with basic_script, different model."""
    train = ws.source("train", sources["train"])
    X = train[["a", "b", "c"]]
    y = train["y"]
    model = X.fit(
        GradientBoostingClassifier(n_estimators=2, max_depth=1), y=y, scorer="train_auc"
    )
    model.terminal()


class TestEndToEnd:
    def test_first_run_executes_everything(self, sources):
        co = CollaborativeOptimizer(MaterializeAll())
        report = co.run_script(basic_script, sources)
        assert report.executed_vertices == 3
        assert report.loaded_vertices == 0

    def test_repeat_run_loads_terminal_only(self, sources):
        co = CollaborativeOptimizer(MaterializeAll())
        co.run_script(basic_script, sources)
        report = co.run_script(basic_script, sources)
        assert report.executed_vertices == 0
        assert report.loaded_vertices == 1

    def test_modified_run_reuses_prefix(self, sources):
        co = CollaborativeOptimizer(MaterializeAll())
        co.run_script(basic_script, sources)
        report = co.run_script(modified_script, sources)
        # only the new GBT must be *trained*; the feature prefix is either
        # loaded or (when recomputing a tiny select is cheaper than the
        # modeled load) recomputed — never both
        assert len(report.model_qualities) == 1
        assert report.loaded_vertices + report.executed_vertices <= 3

    def test_no_materialization_recomputes(self, sources):
        co = CollaborativeOptimizer(MaterializeNone())
        co.run_script(basic_script, sources)
        report = co.run_script(basic_script, sources)
        assert report.loaded_vertices == 0
        assert report.executed_vertices == 3

    def test_eg_grows_across_workloads(self, sources):
        co = CollaborativeOptimizer(MaterializeAll())
        co.run_script(basic_script, sources)
        before = co.eg.num_vertices
        co.run_script(modified_script, sources)
        assert co.eg.num_vertices > before

    def test_optimizer_overhead_recorded(self, sources):
        co = CollaborativeOptimizer(MaterializeAll())
        report = co.run_script(basic_script, sources)
        assert report.optimizer_overhead > 0.0

    def test_baseline_runs_eagerly(self, sources):
        report = CollaborativeOptimizer.run_baseline(basic_script, sources)
        assert report.executed_vertices == 3
        assert report.plan_algorithm == "baseline"

    def test_model_quality_recorded_in_eg(self, sources):
        co = CollaborativeOptimizer(MaterializeAll())
        report = co.run_script(basic_script, sources)
        model_vid = next(iter(report.model_qualities))
        assert co.eg.vertex(model_vid).quality == report.model_qualities[model_vid]

    def test_store_bytes_property(self, sources):
        co = CollaborativeOptimizer(MaterializeAll())
        co.run_script(basic_script, sources)
        assert co.store_bytes > 0


class TestStrategyCombinations:
    @pytest.mark.parametrize(
        "materializer,store",
        [
            (StorageAwareMaterializer(budget_bytes=10_000_000), DedupArtifactStore()),
            (HeuristicMaterializer(budget_bytes=10_000_000), None),
        ],
    )
    @pytest.mark.parametrize(
        "reuse", [LinearReuse(), HelixReuse(), AllMaterializedReuse(), NoReuse()]
    )
    def test_all_pairs_produce_results(self, sources, materializer, store, reuse):
        co = CollaborativeOptimizer(materializer, reuse_algorithm=reuse, store=store)
        first = co.run_script(basic_script, sources)
        second = co.run_script(basic_script, sources)
        assert first.terminal_values
        assert second.terminal_values

    def test_ln_and_helix_same_plan_on_same_eg(self, sources):
        """Against identical EG state the two planners agree (paper 7.4).

        End-to-end runs would measure slightly different wall-clock costs,
        so the comparison is made on one shared EG and workload DAG.
        """
        from repro.client.parser import parse_workload
        from repro.graph.pruning import prune_workload

        co = CollaborativeOptimizer(MaterializeAll())
        co.run_script(basic_script, sources)
        workspace = parse_workload(modified_script, sources)
        prune_workload(workspace.dag)
        plan_ln = LinearReuse().plan(workspace.dag, co.eg)
        plan_hl = HelixReuse().plan(workspace.dag, co.eg)
        assert plan_ln.loads == plan_hl.loads
        assert plan_ln.estimated_cost == pytest.approx(plan_hl.estimated_cost)


class TestWarmstartingIntegration:
    def test_warmstart_applied_when_enabled(self, sources):
        co = CollaborativeOptimizer(MaterializeAll(), warmstarting=True)
        co.run_script(modified_script, sources)

        def bigger_gbt(ws, srcs):
            train = ws.source("train", srcs["train"])
            X = train[["a", "b", "c"]]
            y = train["y"]
            X.fit(
                GradientBoostingClassifier(n_estimators=4, max_depth=1),
                y=y,
                scorer="train_auc",
            ).terminal()

        report = co.run_script(bigger_gbt, sources)
        assert report.warmstarted_vertices == 1

    def test_warmstart_off_by_default(self, sources):
        co = CollaborativeOptimizer(MaterializeAll())
        co.run_script(modified_script, sources)

        def bigger_gbt(ws, srcs):
            train = ws.source("train", srcs["train"])
            X = train[["a", "b", "c"]]
            y = train["y"]
            X.fit(
                GradientBoostingClassifier(n_estimators=4, max_depth=1),
                y=y,
                scorer="train_auc",
            ).terminal()

        report = co.run_script(bigger_gbt, sources)
        assert report.warmstarted_vertices == 0


class TestTieredStoreIntegration:
    """A tiered store is a drop-in for the dedup store: identical results,
    but demotions happen and cold loads are priced at disk bandwidth."""

    def _run_sequence(self, sources, store, reuse):
        co = CollaborativeOptimizer(
            MaterializeAll(), reuse_algorithm=reuse, store=store
        )
        reports = [
            co.run_script(script, sources)
            for script in (basic_script, modified_script, basic_script)
        ]
        return co, reports

    def test_same_results_as_dedup_store(self, sources):
        dedup_co, dedup_reports = self._run_sequence(
            sources, DedupArtifactStore(), LinearReuse()
        )
        tiered = TieredArtifactStore(hot_budget_bytes=0)
        co, tiered_reports = self._run_sequence(
            sources, tiered, LinearReuse(TieredLoadCostModel.default())
        )
        # the *plans* may differ (cold loads can make recomputation the
        # cheaper choice) but the produced artifacts must not: both runs
        # reach the same terminals and record the same model qualities
        for dedup_report, tiered_report in zip(dedup_reports, tiered_reports):
            assert set(tiered_report.terminal_values) == set(
                dedup_report.terminal_values
            )
        assert co.eg.num_vertices == dedup_co.eg.num_vertices
        for vertex in dedup_co.eg.vertices():
            if vertex.quality is not None:
                assert co.eg.vertex(vertex.vertex_id).quality == vertex.quality
        assert co.eg.store.stats.demotions > 0
        assert tiered_reports[-1].store_stats["demotions"] > 0

    def test_cold_loads_priced_at_disk_bandwidth(self, sources):
        # ALL_M loads every materialized vertex unconditionally, so both
        # stores load the same set and only the tier pricing differs
        _, dedup_reports = self._run_sequence(
            sources, DedupArtifactStore(), AllMaterializedReuse()
        )
        tiered = TieredArtifactStore(hot_budget_bytes=0)
        _, tiered_reports = self._run_sequence(
            sources,
            tiered,
            AllMaterializedReuse(TieredLoadCostModel.default()),
        )
        dedup_repeat, tiered_repeat = dedup_reports[-1], tiered_reports[-1]
        assert tiered_repeat.loaded_vertices == dedup_repeat.loaded_vertices > 0
        assert tiered_repeat.cold_loaded_vertices == tiered_repeat.loaded_vertices
        assert dedup_repeat.cold_loaded_vertices == 0
        assert tiered_repeat.load_time > dedup_repeat.load_time

    def test_default_load_cost_model_is_tier_aware(self, sources):
        co = CollaborativeOptimizer(
            MaterializeAll(), store=TieredArtifactStore(hot_budget_bytes=0)
        )
        assert isinstance(co.load_cost_model, TieredLoadCostModel)
        report = co.run_script(basic_script, sources)
        assert report.store_stats["store_type"] == "TieredArtifactStore"
        assert report.store_stats["demotions"] > 0

    def test_optimizer_reports_planned_cold_loads(self, sources):
        co = CollaborativeOptimizer(
            MaterializeAll(),
            reuse_algorithm=AllMaterializedReuse(TieredLoadCostModel.default()),
            store=TieredArtifactStore(hot_budget_bytes=0),
        )
        co.run_script(basic_script, sources)
        workspace = parse_workload(basic_script, sources)
        prune_workload(workspace.dag)
        result = co.optimizer.optimize(workspace.dag)
        assert result.plan.loads
        assert result.planned_cold_loads == len(result.plan.loads)
