"""End-to-end tests for the CollaborativeOptimizer loop (paper Figure 2)."""

import numpy as np
import pytest

from repro.dataframe import DataFrame
from repro.eg.storage import DedupArtifactStore
from repro.materialization import (
    HeuristicMaterializer,
    MaterializeAll,
    MaterializeNone,
    StorageAwareMaterializer,
)
from repro.ml import GradientBoostingClassifier, LogisticRegression
from repro.reuse import AllMaterializedReuse, HelixReuse, LinearReuse, NoReuse
from repro.server.service import CollaborativeOptimizer


@pytest.fixture
def sources():
    rng = np.random.default_rng(1)
    frame = DataFrame(
        {
            "a": rng.normal(size=60),
            "b": rng.normal(size=60),
            "c": rng.normal(size=60),
            "y": (rng.random(60) > 0.5).astype(np.int64),
        }
    )
    return {"train": frame}


def basic_script(ws, sources):
    train = ws.source("train", sources["train"])
    X = train[["a", "b", "c"]]
    y = train["y"]
    model = X.fit(LogisticRegression(max_iter=10), y=y, scorer="train_auc")
    model.terminal()


def modified_script(ws, sources):
    """Shares the feature prefix with basic_script, different model."""
    train = ws.source("train", sources["train"])
    X = train[["a", "b", "c"]]
    y = train["y"]
    model = X.fit(
        GradientBoostingClassifier(n_estimators=2, max_depth=1), y=y, scorer="train_auc"
    )
    model.terminal()


class TestEndToEnd:
    def test_first_run_executes_everything(self, sources):
        co = CollaborativeOptimizer(MaterializeAll())
        report = co.run_script(basic_script, sources)
        assert report.executed_vertices == 3
        assert report.loaded_vertices == 0

    def test_repeat_run_loads_terminal_only(self, sources):
        co = CollaborativeOptimizer(MaterializeAll())
        co.run_script(basic_script, sources)
        report = co.run_script(basic_script, sources)
        assert report.executed_vertices == 0
        assert report.loaded_vertices == 1

    def test_modified_run_reuses_prefix(self, sources):
        co = CollaborativeOptimizer(MaterializeAll())
        co.run_script(basic_script, sources)
        report = co.run_script(modified_script, sources)
        # only the new GBT must be *trained*; the feature prefix is either
        # loaded or (when recomputing a tiny select is cheaper than the
        # modeled load) recomputed — never both
        assert len(report.model_qualities) == 1
        assert report.loaded_vertices + report.executed_vertices <= 3

    def test_no_materialization_recomputes(self, sources):
        co = CollaborativeOptimizer(MaterializeNone())
        co.run_script(basic_script, sources)
        report = co.run_script(basic_script, sources)
        assert report.loaded_vertices == 0
        assert report.executed_vertices == 3

    def test_eg_grows_across_workloads(self, sources):
        co = CollaborativeOptimizer(MaterializeAll())
        co.run_script(basic_script, sources)
        before = co.eg.num_vertices
        co.run_script(modified_script, sources)
        assert co.eg.num_vertices > before

    def test_optimizer_overhead_recorded(self, sources):
        co = CollaborativeOptimizer(MaterializeAll())
        report = co.run_script(basic_script, sources)
        assert report.optimizer_overhead > 0.0

    def test_baseline_runs_eagerly(self, sources):
        report = CollaborativeOptimizer.run_baseline(basic_script, sources)
        assert report.executed_vertices == 3
        assert report.plan_algorithm == "baseline"

    def test_model_quality_recorded_in_eg(self, sources):
        co = CollaborativeOptimizer(MaterializeAll())
        report = co.run_script(basic_script, sources)
        model_vid = next(iter(report.model_qualities))
        assert co.eg.vertex(model_vid).quality == report.model_qualities[model_vid]

    def test_store_bytes_property(self, sources):
        co = CollaborativeOptimizer(MaterializeAll())
        co.run_script(basic_script, sources)
        assert co.store_bytes > 0


class TestStrategyCombinations:
    @pytest.mark.parametrize(
        "materializer,store",
        [
            (StorageAwareMaterializer(budget_bytes=10_000_000), DedupArtifactStore()),
            (HeuristicMaterializer(budget_bytes=10_000_000), None),
        ],
    )
    @pytest.mark.parametrize(
        "reuse", [LinearReuse(), HelixReuse(), AllMaterializedReuse(), NoReuse()]
    )
    def test_all_pairs_produce_results(self, sources, materializer, store, reuse):
        co = CollaborativeOptimizer(materializer, reuse_algorithm=reuse, store=store)
        first = co.run_script(basic_script, sources)
        second = co.run_script(basic_script, sources)
        assert first.terminal_values
        assert second.terminal_values

    def test_ln_and_helix_same_plan_on_same_eg(self, sources):
        """Against identical EG state the two planners agree (paper 7.4).

        End-to-end runs would measure slightly different wall-clock costs,
        so the comparison is made on one shared EG and workload DAG.
        """
        from repro.client.parser import parse_workload
        from repro.graph.pruning import prune_workload

        co = CollaborativeOptimizer(MaterializeAll())
        co.run_script(basic_script, sources)
        workspace = parse_workload(modified_script, sources)
        prune_workload(workspace.dag)
        plan_ln = LinearReuse().plan(workspace.dag, co.eg)
        plan_hl = HelixReuse().plan(workspace.dag, co.eg)
        assert plan_ln.loads == plan_hl.loads
        assert plan_ln.estimated_cost == pytest.approx(plan_hl.estimated_cost)


class TestWarmstartingIntegration:
    def test_warmstart_applied_when_enabled(self, sources):
        co = CollaborativeOptimizer(MaterializeAll(), warmstarting=True)
        co.run_script(modified_script, sources)

        def bigger_gbt(ws, srcs):
            train = ws.source("train", srcs["train"])
            X = train[["a", "b", "c"]]
            y = train["y"]
            X.fit(
                GradientBoostingClassifier(n_estimators=4, max_depth=1),
                y=y,
                scorer="train_auc",
            ).terminal()

        report = co.run_script(bigger_gbt, sources)
        assert report.warmstarted_vertices == 1

    def test_warmstart_off_by_default(self, sources):
        co = CollaborativeOptimizer(MaterializeAll())
        co.run_script(modified_script, sources)

        def bigger_gbt(ws, srcs):
            train = ws.source("train", srcs["train"])
            X = train[["a", "b", "c"]]
            y = train["y"]
            X.fit(
                GradientBoostingClassifier(n_estimators=4, max_depth=1),
                y=y,
                scorer="train_auc",
            ).terminal()

        report = co.run_script(bigger_gbt, sources)
        assert report.warmstarted_vertices == 0
