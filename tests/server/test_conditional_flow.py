"""Tests for conditional control flow via compute_node (paper Section 4.1)."""

import numpy as np
import pytest

from repro.client.api import Workspace
from repro.dataframe import DataFrame
from repro.materialization import MaterializeAll
from repro.ml import GradientBoostingClassifier, LogisticRegression
from repro.server.service import CollaborativeOptimizer


@pytest.fixture
def sources():
    rng = np.random.default_rng(2)
    X = rng.normal(size=(80, 2))
    y = (X[:, 0] + X[:, 1] > 0).astype(np.int64)
    return {"train": DataFrame({"a": X[:, 0], "b": X[:, 1], "y": y})}


class TestConditionalControlFlow:
    def test_branch_on_computed_aggregate(self, sources):
        """The paper's rule: compute the condition, then branch in Python."""
        co = CollaborativeOptimizer(MaterializeAll())
        ws = Workspace()
        train = ws.source("train", sources["train"])
        X, y = train[["a", "b"]], train["y"]
        cheap = X.fit(LogisticRegression(max_iter=20), y=y, scorer="train_auc")
        score = co.compute_node(ws, cheap.evaluate(X, y))
        assert isinstance(score, float)

        if score < 0.999:  # not perfect: escalate to a stronger model
            final = X.fit(
                GradientBoostingClassifier(n_estimators=4, max_depth=2),
                y=y,
                scorer="train_auc",
            )
        else:
            final = cheap
        final.terminal()
        report = co.run_workspace(ws)
        assert ws.dag.vertex(final.vertex_id).computed
        # the prefix computed for the condition is not re-executed
        assert report.executed_vertices <= 2

    def test_condition_artifacts_enter_eg(self, sources):
        co = CollaborativeOptimizer(MaterializeAll())
        ws = Workspace()
        train = ws.source("train", sources["train"])
        stats = train.describe()
        value = co.compute_node(ws, stats)
        assert "a" in value
        assert co.eg.num_vertices >= 2

    def test_terminals_restored_after_compute_node(self, sources):
        co = CollaborativeOptimizer(MaterializeAll())
        ws = Workspace()
        train = ws.source("train", sources["train"])
        goal = train[["a"]]
        goal.terminal()
        co.compute_node(ws, train[["b"]])
        assert ws.dag.terminals == [goal.vertex_id]

    def test_second_session_reuses_condition_prefix(self, sources):
        """A later user's identical condition is answered from the EG."""
        co = CollaborativeOptimizer(MaterializeAll())
        ws1 = Workspace()
        stats1 = ws1.source("train", sources["train"]).describe()
        co.compute_node(ws1, stats1)

        ws2 = Workspace()
        stats2 = ws2.source("train", sources["train"]).describe()
        before = co.eg.vertex(stats2.vertex_id).frequency
        value = co.compute_node(ws2, stats2)
        assert value  # served
        assert co.eg.vertex(stats2.vertex_id).frequency == before + 1

    def test_eager_workspace_passthrough(self, sources):
        co = CollaborativeOptimizer(MaterializeAll())
        ws = Workspace(eager=True)
        stats = ws.source("train", sources["train"]).describe()
        assert co.compute_node(ws, stats) is stats.payload
