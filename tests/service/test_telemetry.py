"""EGService telemetry plane: recorder defaults, health, and debug_info."""

import numpy as np

from repro.client.executor import VirtualCostModel
from repro.dataframe import DataFrame
from repro.materialization.simple import MaterializeAll
from repro.obs.plane import FlightRecorder
from repro.obs.trace import NoopTracer, get_tracer
from repro.service import EGService, ServiceClient
from repro.workloads.synthetic_dag import SleepOperation


def script(workspace, sources):
    node = workspace.source("src", sources["src"])
    node = node.add(SleepOperation(branch=0, step=0, seconds=0.001))
    node.terminal()


def run_one_workload(service: EGService) -> None:
    sources = {"src": DataFrame({"x": np.arange(8.0)})}
    with ServiceClient(
        service, name="tenant", cost_model=VirtualCostModel()
    ) as client:
        client.run_script(script, sources, label="one")


class TestRecorderDefaults:
    def test_background_service_records_by_default(self):
        service = EGService(MaterializeAll(), background=True)
        try:
            assert service.flight_recorder is not None
            assert service.slo_engine is not None
            assert get_tracer().enabled
        finally:
            service.stop()
        assert isinstance(get_tracer(), NoopTracer)

    def test_inline_service_stays_dark(self):
        with EGService(MaterializeAll()) as service:
            assert service.flight_recorder is None
            assert service.slo_engine is None
            assert isinstance(get_tracer(), NoopTracer)

    def test_false_disables_even_in_background(self):
        service = EGService(
            MaterializeAll(), background=True, flight_recorder=False
        )
        try:
            assert service.flight_recorder is None
            assert isinstance(get_tracer(), NoopTracer)
        finally:
            service.stop()

    def test_caller_instance_is_used_and_survives_stop(self):
        recorder = FlightRecorder(slow_threshold_s=0.0, head_sample_every=0)
        service = EGService(
            MaterializeAll(), background=True, flight_recorder=recorder
        )
        try:
            assert service.flight_recorder is recorder
            run_one_workload(service)
        finally:
            service.stop()
        # the data outlives the uninstall: every trace was slow at 0s
        stats = recorder.stats()
        assert stats["kept_total"] >= 1
        assert stats["decisions"]["dropped"] == 0
        assert isinstance(get_tracer(), NoopTracer)


class TestIntrospectionSurface:
    def test_health_shape_and_status(self):
        service = EGService(MaterializeAll(), background=True)
        try:
            health = service.health()
            assert health["status"] == "ok"
            assert health["queue"]["capacity"] > 0
            assert health["queue"]["headroom"] <= health["queue"]["capacity"]
            assert health["recorder"]["spans_seen"] >= 0
            assert set(health["slo"]) == {
                "merge-batch-p99",
                "plan-latency-p95",
                "queue-wait-p99",
                "cold-hit-rate",
                "shed-rate",
                "predictor-health",
            }
            assert health["alerts"] == []
        finally:
            service.stop()
        assert service.health()["status"] == "stopped"

    def test_debug_info_lists_kept_traces_and_slow_spans(self):
        recorder = FlightRecorder(slow_threshold_s=0.0, head_sample_every=0)
        service = EGService(
            MaterializeAll(), background=True, flight_recorder=recorder
        )
        try:
            run_one_workload(service)
            info = service.debug_info()
            assert info["recorder"]["kept_total"] >= 1
            assert info["recent_traces"]
            assert info["slowest_spans"]
            assert info["alerts"] == []
            trace_id = info["recent_traces"][0]["trace_id"]
            detail = service.debug_info(trace_id=trace_id)
            assert detail["trace"]
            assert all(s["trace_id"] == trace_id for s in detail["trace"])
        finally:
            service.stop()

    def test_debug_info_without_recorder_is_empty_but_valid(self):
        with EGService(MaterializeAll()) as service:
            info = service.debug_info()
            assert info["recorder"] is None
            assert info["recent_traces"] == []
            assert info["slowest_spans"] == []

    def test_merge_batch_exemplars_link_to_kept_traces(self):
        recorder = FlightRecorder(slow_threshold_s=0.0, head_sample_every=0)
        service = EGService(
            MaterializeAll(), background=True, flight_recorder=recorder
        )
        try:
            run_one_workload(service)
        finally:
            service.stop()
        hist = service.metrics_registry.get("repro_service_merge_batch_seconds")
        exemplars = hist.exemplars()
        assert exemplars, "merge batches should record exemplars while traced"
        kept_ids = {t["trace_id"] for t in recorder.kept_traces(limit=None)}
        assert any(e["trace_id"] in kept_ids for e in exemplars.values())
