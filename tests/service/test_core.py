"""Tests for EGService: sessions, queueing, batching, shutdown, stats."""

import threading

import numpy as np
import pytest

from repro.client.executor import VirtualCostModel
from repro.dataframe import DataFrame
from repro.eg.storage import ArtifactDivergenceError
from repro.graph.dag import WorkloadDAG
from repro.graph.operations import DataOperation
from repro.materialization.simple import MaterializeAll
from repro.service import (
    EGService,
    RequestTimeoutError,
    ServiceClient,
    ServiceOverloadedError,
    ServiceStoppedError,
    UnknownSessionError,
)


class Step(DataOperation):
    def __init__(self, tag):
        super().__init__("step", params={"tag": tag})

    def run(self, underlying_data):
        return underlying_data


def executed_workload(n_steps: int = 2, columns=("x",), source: str = "src") -> WorkloadDAG:
    dag = WorkloadDAG()
    current = dag.add_source(source, payload=DataFrame({"x": np.arange(5.0)}))
    for index in range(n_steps):
        current = dag.add_operation([current], Step(index))
        frame = DataFrame({name: np.arange(5.0) + index for name in columns})
        dag.vertex(current).record_result(frame, compute_time=1.0)
    dag.mark_terminal(current)
    return dag


def query_workload(n_steps: int = 2, source: str = "src") -> WorkloadDAG:
    """The same DAG shape as ``executed_workload``, but not yet executed."""
    dag = WorkloadDAG()
    current = dag.add_source(source, payload=DataFrame({"x": np.arange(5.0)}))
    for index in range(n_steps):
        current = dag.add_operation([current], Step(index))
    dag.mark_terminal(current)
    return dag


class TestSessions:
    def test_open_and_close(self):
        with EGService(MaterializeAll()) as service:
            session = service.open_session("alice")
            assert session.name == "alice"
            assert service.stats().open_sessions == 1
            service.close_session(session.session_id)
            assert service.stats().open_sessions == 0

    def test_unknown_session_rejected(self):
        with EGService(MaterializeAll()) as service:
            with pytest.raises(UnknownSessionError):
                service.commit("s9999", executed_workload())
            with pytest.raises(UnknownSessionError):
                service.plan("s9999", executed_workload())


class TestInlineCommit:
    def test_commit_merges_and_publishes(self):
        with EGService(MaterializeAll()) as service:
            session = service.open_session()
            result = service.commit(session.session_id, executed_workload())
            assert result.commit_index == 1
            assert result.version == 1
            assert result.new_sources == 1
            assert service.versioned.version == 1
            assert service.eg.num_vertices == 3

    def test_concurrent_inline_commits_all_merge(self):
        service = EGService(MaterializeAll())
        session = service.open_session()
        errors = []

        def commit(n):
            try:
                service.commit(session.session_id, executed_workload(n))
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=commit, args=(n,)) for n in (1, 2, 3, 4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert service.stats().commits_total == 4
        log = service.commit_log()
        assert [r.commit_index for r in log] == [1, 2, 3, 4]
        service.stop()

    def test_divergent_commit_raises_and_rest_merge(self):
        with EGService(MaterializeAll()) as service:
            session = service.open_session()
            service.commit(session.session_id, executed_workload())
            with pytest.raises(ArtifactDivergenceError):
                service.commit(session.session_id, executed_workload(columns=("x", "y")))
            stats = service.stats()
            assert stats.rejected_commits_total == 1
            assert stats.commits_total == 1


class TestBackgroundWorker:
    def test_blocked_worker_coalesces_into_one_batch(self):
        service = EGService(MaterializeAll(), background=True)
        session = service.open_session()
        with service._merge_lock:  # hold the worker off the queue
            tickets = [
                service.submit_update(session.session_id, executed_workload(n))
                for n in (1, 2, 3)
            ]
            assert not any(t.done for t in tickets)
        results = [t.wait(10.0) for t in tickets]
        assert all(r.batch_size == 3 for r in results)
        assert [r.commit_index for r in results] == [1, 2, 3]
        stats = service.stats()
        assert stats.batches == 1
        assert stats.max_batch_size == 3
        service.stop()

    def test_overload_rejects_submission(self):
        service = EGService(MaterializeAll(), queue_capacity=2, background=True)
        session = service.open_session()
        with service._merge_lock:
            service.submit_update(session.session_id, executed_workload(1))
            service.submit_update(session.session_id, executed_workload(2))
            with pytest.raises(ServiceOverloadedError):
                service.submit_update(session.session_id, executed_workload(3))
        assert service.stats().overload_rejections == 1
        service.stop()

    def test_client_retries_through_overload(self):
        service = EGService(MaterializeAll(), queue_capacity=1, background=True)
        blocker = service.open_session()
        lock_released = threading.Event()

        service._merge_lock.acquire()
        service.submit_update(blocker.session_id, executed_workload(1))

        def release_later():
            lock_released.wait(5.0)
            service._merge_lock.release()

        releaser = threading.Thread(target=release_later)
        releaser.start()
        client = ServiceClient(service, name="patient", cost_model=VirtualCostModel())
        # the client's first commit attempts bounce off the full queue and
        # back off; releasing the merge lock lets a retry succeed
        lock_released.set()
        from repro.workloads.synthetic_dag import wide_workload_script

        rng = np.random.default_rng(7)
        report = client.run_script(
            wide_workload_script(2, 2, 0.01),
            {"wide": DataFrame({"x": rng.normal(size=8)})},
        )
        releaser.join()
        assert report.executed_vertices > 0
        assert service.stats().commits_total == 2
        service.stop()

    def test_request_timeout_while_worker_blocked(self):
        service = EGService(MaterializeAll(), background=True)
        session = service.open_session()
        with service._merge_lock:
            ticket = service.submit_update(session.session_id, executed_workload())
            with pytest.raises(RequestTimeoutError):
                ticket.wait(0.05)
        # the merge still applies after the waiter gave up
        assert ticket.wait(10.0).commit_index == 1
        service.stop()


class FlakyMaterializer(MaterializeAll):
    """Materializer that can be armed to blow up one batch."""

    def __init__(self):
        super().__init__()
        self.fail_next = False

    def select(self, eg, available):
        if self.fail_next:
            self.fail_next = False
            raise RuntimeError("materializer exploded")
        return super().select(eg, available)


class TestMergeFailure:
    def test_worker_survives_merge_error(self):
        materializer = FlakyMaterializer()
        service = EGService(materializer, background=True)
        session = service.open_session()
        service.commit(session.session_id, executed_workload(1))

        materializer.fail_next = True
        with pytest.raises(RuntimeError, match="materializer exploded"):
            service.commit(session.session_id, executed_workload(2))

        # the failed batch must not kill the daemon merge worker: a later
        # commit still merges instead of timing out against a dead service
        result = service.commit(session.session_id, executed_workload(3), timeout=10.0)
        assert result.commit_index == 2
        assert service.stats().commits_total == 2
        service.stop()


class TestShutdown:
    def test_stop_drains_queued_commits(self):
        service = EGService(MaterializeAll(), background=True)
        session = service.open_session()
        with service._merge_lock:
            tickets = [
                service.submit_update(session.session_id, executed_workload(n))
                for n in (1, 2)
            ]
            stopper = threading.Thread(target=service.stop)
            stopper.start()
        stopper.join(10.0)
        assert all(t.wait(1.0).commit_index in (1, 2) for t in tickets)
        assert not service.running
        with pytest.raises(ServiceStoppedError):
            service.submit_update(session.session_id, executed_workload())
        with pytest.raises(ServiceStoppedError):
            service.open_session()

    def test_stop_without_drain_fails_pending(self):
        service = EGService(MaterializeAll(), background=True)
        session = service.open_session()
        with service._merge_lock:
            ticket = service.submit_update(session.session_id, executed_workload())
            service.stop(drain=False)
        with pytest.raises(ServiceStoppedError):
            ticket.wait(1.0)
        assert service.stats().commits_total == 0

    def test_stop_is_idempotent(self):
        service = EGService(MaterializeAll())
        service.stop()
        service.stop()


class TestStats:
    def test_plan_and_latency_counters(self):
        with EGService(MaterializeAll()) as service:
            client = ServiceClient(service, name="c", cost_model=VirtualCostModel())
            from repro.workloads.synthetic_dag import wide_workload_script

            rng = np.random.default_rng(7)
            sources = {"wide": DataFrame({"x": rng.normal(size=8)})}
            client.run_script(wide_workload_script(2, 2, 0.05), sources)
            client.run_script(wide_workload_script(2, 2, 0.05), sources)
            stats = service.stats()
            assert stats.plans_total == 2
            assert stats.commits_total == 2
            assert stats.reuse_hits_total == 1  # second run loads from the EG
            assert stats.requests_timed == 2
            assert stats.request_p99_s >= stats.request_p50_s > 0.0
            assert stats.sessions[client.session_id].plans == 2

    def test_snapshot_is_frozen(self):
        with EGService(MaterializeAll()) as service:
            stats = service.stats()
            with pytest.raises(AttributeError):
                stats.plans_total = 5


class TestPlanCache:
    def test_repeat_plan_hits_cache(self):
        with EGService(MaterializeAll()) as service:
            session = service.open_session()
            service.commit(session.session_id, executed_workload(3))
            with service.plan(session.session_id, query_workload(3)) as first:
                loads = set(first.result.plan.loads)
            assert loads  # the plan actually reuses EG artifacts
            with service.plan(session.session_id, query_workload(3)) as second:
                assert set(second.result.plan.loads) == loads
                assert second.result.planning_seconds == 0.0
            stats = service.stats()
            assert stats.plan_cache_misses == 1
            assert stats.plan_cache_hits == 1
            assert stats.plan_cache_hit_rate == 0.5

    def test_distinct_workloads_take_distinct_keys(self):
        with EGService(MaterializeAll()) as service:
            session = service.open_session()
            service.commit(session.session_id, executed_workload(3))
            with service.plan(session.session_id, query_workload(2)):
                pass
            with service.plan(session.session_id, query_workload(3)):
                pass
            stats = service.stats()
            assert stats.plan_cache_misses == 2
            assert stats.plan_cache_hits == 0

    def test_commit_invalidates_cache(self):
        with EGService(MaterializeAll()) as service:
            session = service.open_session()
            service.commit(session.session_id, executed_workload(2))
            for _ in range(2):
                with service.plan(session.session_id, query_workload(2)):
                    pass
            assert service.stats().plan_cache_hits == 1
            # a publish moves the snapshot version: the cached entry is gone
            service.commit(session.session_id, executed_workload(4))
            with service.plan(session.session_id, query_workload(2)):
                pass
            stats = service.stats()
            assert stats.plan_cache_misses == 2
            assert stats.plan_cache_hits == 1

    def test_cached_plan_is_defensively_copied(self):
        with EGService(MaterializeAll()) as service:
            session = service.open_session()
            service.commit(session.session_id, executed_workload(3))
            with service.plan(session.session_id, query_workload(3)) as first:
                first.result.plan.loads.add("poisoned")
            with service.plan(session.session_id, query_workload(3)) as second:
                assert "poisoned" not in second.result.plan.loads
            assert service.stats().plan_cache_hits == 1

    def test_zero_size_disables_cache(self):
        with EGService(MaterializeAll(), plan_cache_size=0) as service:
            session = service.open_session()
            service.commit(session.session_id, executed_workload(2))
            for _ in range(2):
                with service.plan(session.session_id, query_workload(2)):
                    pass
            stats = service.stats()
            assert stats.plan_cache_hits == 0
            assert stats.plan_cache_misses == 2


class TestIncrementalPublish:
    def test_publish_dirty_counters_track_batch_not_graph(self):
        with EGService(MaterializeAll()) as service:
            session = service.open_session()
            # first commit: everything is new, so everything is dirty
            service.commit(session.session_id, executed_workload(20, source="big"))
            first = service.stats()
            assert first.publishes == 1
            assert first.publish_dirty_vertices == service.eg.num_vertices
            # second commit is a small disjoint chain: only its own
            # vertices are dirty, not the 21 already published
            service.commit(session.session_id, executed_workload(3, source="small"))
            second = service.stats()
            assert second.publishes == 2
            assert second.publish_dirty_vertices - first.publish_dirty_vertices == 4
            assert second.mean_dirty_per_publish < service.eg.num_vertices
            # the utility index saw the same locality
            cost_dirty = second.utility_cost_dirty - first.utility_cost_dirty
            assert cost_dirty == 4

    def test_debug_cross_check_verifies_every_pass(self):
        from repro.materialization import HeuristicMaterializer

        service = EGService(
            HeuristicMaterializer(budget_bytes=10**9), debug_cross_check=True
        )
        with service:
            session = service.open_session()
            service.commit(session.session_id, executed_workload(3))
            service.commit(session.session_id, executed_workload(5))
            index = service.eg.utility_index
            assert index is not None
            assert index.cross_checks_passed >= 2
            assert index.deltas_applied >= 2
