"""MetricsRecorder: percentile edges, lock discipline, and expositions."""

import threading
import time

import pytest

from repro.materialization.simple import MaterializeAll
from repro.service import EGService
from repro.service.stats import MetricsRecorder
from repro.service.tcp import ServiceTCPServer, TCPServiceClient


def snap(recorder: MetricsRecorder):
    return recorder.snapshot(
        version=0,
        open_sessions=0,
        queue_depth=0,
        queue_capacity=8,
        deferred_evictions=0,
    )


class TestLatencyPercentiles:
    def test_empty_window_reports_zero(self):
        stats = snap(MetricsRecorder())
        assert stats.requests_timed == 0
        assert stats.request_p50_s == 0.0
        assert stats.request_p99_s == 0.0

    def test_single_element_window(self):
        recorder = MetricsRecorder()
        recorder.record_request_latency(0.25)
        stats = snap(recorder)
        assert stats.requests_timed == 1
        assert stats.request_p50_s == 0.25
        assert stats.request_p99_s == 0.25

    def test_two_element_window_interpolates(self):
        recorder = MetricsRecorder()
        recorder.record_request_latency(1.0)
        recorder.record_request_latency(2.0)
        stats = snap(recorder)
        assert stats.request_p50_s == pytest.approx(1.5)
        assert stats.request_p99_s == pytest.approx(1.99)

    def test_p99_below_max_for_larger_windows(self):
        recorder = MetricsRecorder()
        for ms in range(1, 101):
            recorder.record_request_latency(ms / 1000.0)
        stats = snap(recorder)
        assert stats.request_p50_s == pytest.approx(0.0505)
        assert 0.099 < stats.request_p99_s < 0.100


class TestSnapshotConcurrency:
    def test_snapshot_never_blocks_recorders(self):
        """record_* must stay fast while snapshots run in a tight loop."""
        recorder = MetricsRecorder()
        recorder.register_session("s1", "writer")
        stop = threading.Event()

        def snapshotter():
            while not stop.is_set():
                snap(recorder)

        thread = threading.Thread(target=snapshotter)
        thread.start()
        try:
            worst = 0.0
            for index in range(2000):
                begin = time.perf_counter()
                recorder.record_plan("s1", planned_loads=index % 3)
                recorder.record_request_latency(0.001)
                recorder.record_batch(2, 0.002)
                worst = max(worst, time.perf_counter() - begin)
        finally:
            stop.set()
            thread.join()
        # generous bound: each record_* holds only one instrument lock at a
        # time, so even under a snapshot storm a write stays sub-50ms
        assert worst < 0.05
        stats = snap(recorder)
        assert stats.plans_total == 2000
        assert stats.batches == 2000

    def test_snapshot_is_one_consistent_cut(self):
        """Regression: a snapshot must not tear across instruments.

        Every writer records a plan strictly before its commit, so any
        consistent cut satisfies ``commits_total <= plans_total``.  The
        old snapshot read each instrument at a different instant, letting
        commits recorded after the plans were read leak in and violate
        the invariant.
        """
        recorder = MetricsRecorder()
        recorder.register_session("s1", "writer")
        stop = threading.Event()
        violations: list[tuple[int, int]] = []

        def snapshotter():
            while not stop.is_set():
                stats = snap(recorder)
                if stats.commits_total > stats.plans_total:
                    violations.append((stats.commits_total, stats.plans_total))

        threads = [threading.Thread(target=snapshotter) for _ in range(2)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(3000):
                recorder.record_plan("s1", planned_loads=1)
                recorder.record_commit("s1", merged=True)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert violations == []
        stats = snap(recorder)
        assert stats.plans_total == stats.commits_total == 3000

    def test_concurrent_writers_lose_no_counts(self):
        recorder = MetricsRecorder()
        recorder.register_session("s1", "a")

        def hammer():
            for _ in range(500):
                recorder.record_plan("s1", planned_loads=1)
                recorder.record_commit("s1", merged=True)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = snap(recorder)
        assert stats.plans_total == 2000
        assert stats.commits_total == 2000
        assert stats.reuse_hits_total == 2000


class TestQueueWait:
    def test_queue_wait_lands_in_the_shared_registry(self):
        recorder = MetricsRecorder()
        recorder.record_queue_wait(0.003)
        recorder.record_queue_wait(0.004)
        text = recorder.registry.render_prometheus()
        assert "repro_service_queue_wait_seconds_count 2" in text
        assert "repro_service_queue_wait_seconds_sum 0.007" in text


class TestServiceExposition:
    def test_metrics_text_and_snapshot(self):
        with EGService(MaterializeAll()) as service:
            text = service.metrics_text()
            assert "# TYPE repro_service_version gauge" in text
            assert "repro_service_queue_depth 0" in text
            snapshot = service.metrics_snapshot()
            assert snapshot["repro_service_version"]["type"] == "gauge"
            assert snapshot["repro_service_queue_depth"]["series"][0]["value"] == 0.0

    def test_metrics_over_tcp(self):
        with EGService(MaterializeAll()) as service:
            with ServiceTCPServer(service) as server:
                host, port = server.address
                with TCPServiceClient(host, port) as client:
                    text = client.metrics()
                    assert "repro_service_version" in text
                    snapshot = client.metrics(format="json")
                    assert isinstance(snapshot, dict)
                    assert "repro_service_version" in snapshot
