"""Tests for the versioned, snapshot-isolated Experiment Graph."""

import numpy as np

from repro.dataframe import DataFrame
from repro.eg.graph import ExperimentGraph
from repro.eg.updater import Updater
from repro.graph.dag import WorkloadDAG
from repro.graph.operations import DataOperation
from repro.materialization.simple import MaterializeAll
from repro.service.versioned import VersionedExperimentGraph, copy_experiment_graph


class Step(DataOperation):
    def __init__(self, tag):
        super().__init__("step", params={"tag": tag})

    def run(self, underlying_data):
        return underlying_data


def executed_workload(n_steps: int = 2) -> WorkloadDAG:
    dag = WorkloadDAG()
    current = dag.add_source("src", payload=DataFrame({"x": np.arange(5.0)}))
    for index in range(n_steps):
        current = dag.add_operation([current], Step(index))
        dag.vertex(current).record_result(
            DataFrame({"x": np.arange(5.0) + index}), compute_time=1.0
        )
    dag.mark_terminal(current)
    return dag


def populated_eg(n_steps: int = 2) -> ExperimentGraph:
    eg = ExperimentGraph()
    Updater(eg, MaterializeAll()).update(executed_workload(n_steps))
    return eg


class TestCopy:
    def test_copy_shares_store_but_not_vertex_records(self):
        eg = populated_eg()
        copied = copy_experiment_graph(eg)
        assert copied.store is eg.store
        assert copied.num_vertices == eg.num_vertices
        some_id = next(v.vertex_id for v in eg.artifact_vertices() if not v.is_source)
        eg.vertex(some_id).frequency = 99
        assert copied.vertex(some_id).frequency != 99

    def test_copy_preserves_edges_and_bookkeeping(self):
        eg = populated_eg(3)
        copied = copy_experiment_graph(eg)
        assert set(copied.graph.edges) == set(eg.graph.edges)
        assert copied.workloads_observed == eg.workloads_observed
        assert copied.source_ids == eg.source_ids
        assert copied.materialized_ids() == eg.materialized_ids()


class TestVersioning:
    def test_publish_bumps_version_and_isolates_readers(self):
        versioned = VersionedExperimentGraph(eg=populated_eg())
        assert versioned.version == 0
        lease = versioned.acquire()
        before = lease.eg.num_vertices

        Updater(versioned.working, MaterializeAll()).update(executed_workload(4))
        # the pinned snapshot must not see the merge until republished
        assert lease.eg.num_vertices == before
        version = versioned.publish()
        assert version == 1
        assert lease.eg.num_vertices == before  # still the old snapshot
        fresh = versioned.acquire()
        assert fresh.eg.num_vertices > before
        lease.release()
        fresh.release()

    def test_lease_is_context_manager_and_idempotent(self):
        versioned = VersionedExperimentGraph(eg=populated_eg())
        with versioned.acquire() as lease:
            assert versioned.pinned_leases == 1
        assert versioned.pinned_leases == 0
        lease.release()  # second release is a no-op
        assert versioned.pinned_leases == 0

    def test_replace_swaps_working_and_republishes(self):
        versioned = VersionedExperimentGraph(eg=populated_eg())
        replacement = populated_eg(5)
        version = versioned.replace(replacement)
        assert versioned.working is replacement
        assert version == versioned.version == 1
        with versioned.acquire() as lease:
            assert lease.eg.num_vertices == replacement.num_vertices


class TestDeferredEviction:
    def test_unpinned_eviction_waits_for_publish(self):
        # even with no lease pinned, the *published* snapshot still marks
        # the artifact materialized until the next publish — removal must
        # wait for the post-publish flush or a reader acquiring mid-merge
        # would plan a load of already-removed content
        versioned = VersionedExperimentGraph(eg=populated_eg())
        victim = next(
            v.vertex_id
            for v in versioned.working.artifact_vertices()
            if v.materialized and not v.is_source
        )
        versioned.working.vertex(victim).materialized = False
        assert versioned.defer_unmaterialize(victim) == 0
        assert versioned.deferred_evictions == 1
        # a reader acquiring between the defer and the publish still loads
        lease = versioned.acquire()
        assert lease.eg.load(victim) is not None
        versioned.publish()
        assert versioned.flush_deferred() == 0  # that mid-merge reader pins it
        assert lease.eg.load(victim) is not None
        lease.release()
        assert versioned.flush_deferred() > 0
        assert versioned.deferred_evictions == 0
        assert victim not in versioned.working.store

    def test_pinned_eviction_defers_until_lease_released(self):
        versioned = VersionedExperimentGraph(eg=populated_eg())
        lease = versioned.acquire()
        victim = next(
            v.vertex_id
            for v in versioned.working.artifact_vertices()
            if v.materialized and not v.is_source
        )
        versioned.working.vertex(victim).materialized = False
        assert versioned.defer_unmaterialize(victim) == 0
        assert versioned.deferred_evictions == 1
        # the pinned reader can still load the deselected artifact
        assert lease.eg.load(victim) is not None

        versioned.publish()
        assert versioned.flush_deferred() == 0  # old lease still outstanding
        lease.release()
        assert versioned.flush_deferred() > 0
        assert versioned.deferred_evictions == 0
        assert victim not in versioned.working.store

    def test_rematerialization_cancels_deferred_eviction(self):
        versioned = VersionedExperimentGraph(eg=populated_eg())
        lease = versioned.acquire()
        victim = next(
            v.vertex_id
            for v in versioned.working.artifact_vertices()
            if v.materialized and not v.is_source
        )
        versioned.working.vertex(victim).materialized = False
        versioned.defer_unmaterialize(victim)
        # a later merge re-selects the artifact before the flush
        versioned.working.vertex(victim).materialized = True
        lease.release()
        assert versioned.flush_deferred() == 0
        assert versioned.deferred_evictions == 0
        assert victim in versioned.working.store
