"""Tests for the versioned, snapshot-isolated Experiment Graph."""

import numpy as np

from repro.dataframe import DataFrame
from repro.eg.graph import ExperimentGraph
from repro.eg.updater import Updater
from repro.graph.dag import WorkloadDAG, source_vertex_id
from repro.graph.operations import DataOperation
from repro.materialization.simple import MaterializeAll
from repro.experiments.swarm import eg_fingerprint
from repro.service.versioned import VersionedExperimentGraph, copy_experiment_graph


class Step(DataOperation):
    def __init__(self, tag):
        super().__init__("step", params={"tag": tag})

    def run(self, underlying_data):
        return underlying_data


def executed_workload(n_steps: int = 2, source: str = "src") -> WorkloadDAG:
    dag = WorkloadDAG()
    current = dag.add_source(source, payload=DataFrame({"x": np.arange(5.0)}))
    for index in range(n_steps):
        current = dag.add_operation([current], Step(index))
        dag.vertex(current).record_result(
            DataFrame({"x": np.arange(5.0) + index}), compute_time=1.0
        )
    dag.mark_terminal(current)
    return dag


def populated_eg(n_steps: int = 2) -> ExperimentGraph:
    eg = ExperimentGraph()
    Updater(eg, MaterializeAll()).update(executed_workload(n_steps))
    return eg


class TestCopy:
    def test_copy_shares_store_but_not_vertex_records(self):
        eg = populated_eg()
        copied = copy_experiment_graph(eg)
        assert copied.store is eg.store
        assert copied.num_vertices == eg.num_vertices
        some_id = next(v.vertex_id for v in eg.artifact_vertices() if not v.is_source)
        eg.vertex(some_id).frequency = 99
        assert copied.vertex(some_id).frequency != 99

    def test_copy_preserves_edges_and_bookkeeping(self):
        eg = populated_eg(3)
        copied = copy_experiment_graph(eg)
        assert set(copied.graph.edges) == set(eg.graph.edges)
        assert copied.workloads_observed == eg.workloads_observed
        assert copied.source_ids == eg.source_ids
        assert copied.materialized_ids() == eg.materialized_ids()


class TestVersioning:
    def test_publish_bumps_version_and_isolates_readers(self):
        versioned = VersionedExperimentGraph(eg=populated_eg())
        assert versioned.version == 0
        lease = versioned.acquire()
        before = lease.eg.num_vertices

        Updater(versioned.working, MaterializeAll()).update(executed_workload(4))
        # the pinned snapshot must not see the merge until republished
        assert lease.eg.num_vertices == before
        version = versioned.publish()
        assert version == 1
        assert lease.eg.num_vertices == before  # still the old snapshot
        fresh = versioned.acquire()
        assert fresh.eg.num_vertices > before
        lease.release()
        fresh.release()

    def test_lease_is_context_manager_and_idempotent(self):
        versioned = VersionedExperimentGraph(eg=populated_eg())
        with versioned.acquire() as lease:
            assert versioned.pinned_leases == 1
        assert versioned.pinned_leases == 0
        lease.release()  # second release is a no-op
        assert versioned.pinned_leases == 0

    def test_replace_swaps_working_and_republishes(self):
        versioned = VersionedExperimentGraph(eg=populated_eg())
        replacement = populated_eg(5)
        version = versioned.replace(replacement)
        assert versioned.working is replacement
        assert version == versioned.version == 1
        with versioned.acquire() as lease:
            assert lease.eg.num_vertices == replacement.num_vertices


class TestDeferredEviction:
    def test_unpinned_eviction_waits_for_publish(self):
        # even with no lease pinned, the *published* snapshot still marks
        # the artifact materialized until the next publish — removal must
        # wait for the post-publish flush or a reader acquiring mid-merge
        # would plan a load of already-removed content
        versioned = VersionedExperimentGraph(eg=populated_eg())
        victim = next(
            v.vertex_id
            for v in versioned.working.artifact_vertices()
            if v.materialized and not v.is_source
        )
        versioned.working.vertex(victim).materialized = False
        assert versioned.defer_unmaterialize(victim) == 0
        assert versioned.deferred_evictions == 1
        # a reader acquiring between the defer and the publish still loads
        lease = versioned.acquire()
        assert lease.eg.load(victim) is not None
        versioned.publish()
        assert versioned.flush_deferred() == 0  # that mid-merge reader pins it
        assert lease.eg.load(victim) is not None
        lease.release()
        assert versioned.flush_deferred() > 0
        assert versioned.deferred_evictions == 0
        assert victim not in versioned.working.store

    def test_pinned_eviction_defers_until_lease_released(self):
        versioned = VersionedExperimentGraph(eg=populated_eg())
        lease = versioned.acquire()
        victim = next(
            v.vertex_id
            for v in versioned.working.artifact_vertices()
            if v.materialized and not v.is_source
        )
        versioned.working.vertex(victim).materialized = False
        assert versioned.defer_unmaterialize(victim) == 0
        assert versioned.deferred_evictions == 1
        # the pinned reader can still load the deselected artifact
        assert lease.eg.load(victim) is not None

        versioned.publish()
        assert versioned.flush_deferred() == 0  # old lease still outstanding
        lease.release()
        assert versioned.flush_deferred() > 0
        assert versioned.deferred_evictions == 0
        assert victim not in versioned.working.store

    def test_rematerialization_cancels_deferred_eviction(self):
        versioned = VersionedExperimentGraph(eg=populated_eg())
        lease = versioned.acquire()
        victim = next(
            v.vertex_id
            for v in versioned.working.artifact_vertices()
            if v.materialized and not v.is_source
        )
        versioned.working.vertex(victim).materialized = False
        versioned.defer_unmaterialize(victim)
        # a later merge re-selects the artifact before the flush
        versioned.working.vertex(victim).materialized = True
        lease.release()
        assert versioned.flush_deferred() == 0
        assert versioned.deferred_evictions == 0
        assert victim in versioned.working.store


class TestCowPublish:
    """Copy-on-write publishing: ``publish(dirty_vertices=...)``."""

    @staticmethod
    def _service_side() -> tuple[ExperimentGraph, Updater, VersionedExperimentGraph]:
        eg = ExperimentGraph()
        updater = Updater(eg, MaterializeAll())
        versioned = VersionedExperimentGraph(eg=eg)
        return eg, updater, versioned

    @staticmethod
    def _merge_publish(updater, versioned, workload) -> set[str]:
        """One merge-worker drain cycle, as EGService runs it."""
        updater.update_batch([workload], evict=versioned.defer_unmaterialize)
        dirty = set(updater.pending_dirty)
        versioned.publish(dirty_vertices=dirty)
        updater.clear_dirty()
        versioned.flush_deferred()
        return dirty

    def test_cow_snapshot_equals_full_copy(self):
        eg, updater, versioned = self._service_side()
        self._merge_publish(updater, versioned, executed_workload(3))
        self._merge_publish(updater, versioned, executed_workload(5))
        with versioned.acquire() as lease:
            assert eg_fingerprint(lease.eg) == eg_fingerprint(copy_experiment_graph(eg))
            assert lease.eg.store is eg.store

    def test_snapshot_never_observes_working_mutations(self):
        # mutate-after-publish probe: once published, a snapshot must be
        # frozen no matter what later merges or pokes do to the working EG
        eg, updater, versioned = self._service_side()
        self._merge_publish(updater, versioned, executed_workload(2))
        lease = versioned.acquire()
        frozen = eg_fingerprint(lease.eg)
        # a second merge extends the shared chain (touches every prefix
        # record) and publishes over the snapshot the lease pins
        self._merge_publish(updater, versioned, executed_workload(5))
        assert eg_fingerprint(lease.eg) == frozen
        # direct record mutations on the working graph cannot leak either
        for vertex in eg.artifact_vertices():
            vertex.frequency += 7
            vertex.compute_time += 1.0
        assert eg_fingerprint(lease.eg) == frozen
        lease.release()

    def test_clean_vertices_share_structure_with_previous_snapshot(self):
        eg, updater, versioned = self._service_side()
        self._merge_publish(updater, versioned, executed_workload(2, source="left"))
        first = versioned.acquire()
        # a disjoint workload leaves the first chain untouched (clean)
        dirty = self._merge_publish(
            updater, versioned, executed_workload(2, source="right")
        )
        second = versioned.acquire()
        clean_id = source_vertex_id("left")
        dirty_id = source_vertex_id("right")
        assert clean_id not in dirty and dirty_id in dirty
        # clean vertex: node-attr dict shared with the previous snapshot
        assert second.eg.graph.nodes[clean_id] is first.eg.graph.nodes[clean_id]
        # dirty vertex: fresh record, not an alias of the working graph's
        assert (
            second.eg.graph.nodes[dirty_id]["vertex"]
            is not eg.graph.nodes[dirty_id]["vertex"]
        )
        first.release()
        second.release()

    def test_cow_publish_respects_deferred_eviction(self):
        versioned = VersionedExperimentGraph(eg=populated_eg(3))
        lease = versioned.acquire()  # pins the pre-eviction snapshot
        victim = next(
            v.vertex_id
            for v in versioned.working.artifact_vertices()
            if v.materialized and not v.is_source
        )
        versioned.working.vertex(victim).materialized = False
        assert versioned.defer_unmaterialize(victim) == 0
        versioned.publish(dirty_vertices={victim})
        # the COW snapshot carries the flipped flag...
        with versioned.acquire() as fresh:
            assert not fresh.eg.vertex(victim).materialized
        # ...but the content stays loadable while the old lease is out
        assert versioned.flush_deferred() == 0
        assert lease.eg.vertex(victim).materialized
        assert lease.eg.load(victim) is not None
        lease.release()
        assert versioned.flush_deferred() > 0
        assert victim not in versioned.working.store
