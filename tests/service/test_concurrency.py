"""Concurrency correctness: N tenants must equal a sequential replay."""

from repro.experiments.swarm import eg_fingerprint, replay_sequentially, run_swarm


class TestSwarmEquivalence:
    def test_eight_clients_match_sequential_replay(self):
        """The acceptance check: 8 concurrent tenants, batched merges, and a
        final EG bit-identical to replaying the commit log sequentially."""
        result = run_swarm(clients=8, rounds=3, op_seconds=0.02)
        assert result.workloads == 24
        assert result.fingerprint_match is True
        # merges actually batched (the linger coalesces concurrent commits)
        assert result.stats.mean_batch_size > 1.0
        # tenants planned against each other's merged artifacts
        assert result.stats.reuse_hits_total > 0
        assert result.stats.rejected_commits_total == 0
        assert result.stats.retries_total == 0

    def test_replay_follows_commit_order(self):
        result = run_swarm(clients=4, rounds=2, op_seconds=0.01)
        assert len(result.commit_labels) == 8
        # replaying in a DIFFERENT order still matches here only if the
        # recorded order happens to be equivalent; the recorded order must
        # always match, which is what the experiment asserts
        replayed = replay_sequentially(result.commit_labels, op_seconds=0.01)
        assert eg_fingerprint(replayed) == result.concurrent_fingerprint

    def test_counters_are_structurally_deterministic(self):
        """EG structure counters must not depend on batching/timing."""
        first = run_swarm(clients=6, rounds=2, op_seconds=0.01, replay=False)
        second = run_swarm(
            clients=6, rounds=2, op_seconds=0.01, batch_linger_s=0.0, replay=False
        )
        assert first.eg_vertices == second.eg_vertices
        assert first.eg_edges == second.eg_edges
        assert first.eg_materialized == second.eg_materialized
        assert first.store_bytes == second.store_bytes
        # NOTE: full fingerprints may differ between independent runs —
        # ``last_seen`` depends on the commit order the scheduler produced;
        # each run still matches its OWN commit-order replay exactly
