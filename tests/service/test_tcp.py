"""Tests for the length-prefixed JSON TCP transport."""

import numpy as np
import pytest

from repro.client.executor import VirtualCostModel
from repro.dataframe import DataFrame
from repro.graph.dag import WorkloadDAG
from repro.graph.operations import DataOperation
from repro.materialization.simple import MaterializeAll
from repro.ml.linear import LogisticRegression
from repro.service import EGService, TruncatedFrameError, UnknownSessionError
from repro.service.tcp import (
    _recv_frame,
    ServiceTCPServer,
    TCPServiceClient,
    decode_payload,
    decode_workload,
    encode_payload,
    encode_workload,
)
from repro.workloads.synthetic_dag import wide_workload_script


def make_sources():
    rng = np.random.default_rng(7)
    return {"wide": DataFrame({"x": rng.normal(size=8), "y": rng.normal(size=8)})}


class TestPayloadCodec:
    def test_dataframe_roundtrip_preserves_lineage(self):
        frame = make_sources()["wide"]
        decoded = decode_payload(encode_payload(frame))
        assert decoded.columns == frame.columns
        assert decoded.column_ids == frame.column_ids
        np.testing.assert_array_equal(decoded.column("x").values, frame.column("x").values)
        assert decoded.nbytes == frame.nbytes

    def test_ndarray_and_scalar_roundtrip(self):
        arr = np.arange(12.0).reshape(3, 4)
        decoded = decode_payload(encode_payload(arr))
        np.testing.assert_array_equal(decoded, arr)
        assert decoded.dtype == arr.dtype
        assert decode_payload(encode_payload(3.5)) == 3.5
        assert decode_payload(encode_payload(np.float64(2.5))) == 2.5
        assert decode_payload(encode_payload((1, "a"))) == (1, "a")

    def test_models_are_not_transportable(self):
        assert encode_payload(LogisticRegression()) is None

    def test_string_object_column_roundtrips(self):
        frame = DataFrame({"label": np.array(["a", "b", "c"], dtype=object)})
        decoded = decode_payload(encode_payload(frame))
        assert decoded.column_ids == frame.column_ids
        np.testing.assert_array_equal(
            decoded.column("label").values, frame.column("label").values
        )

    def test_non_string_object_column_is_not_transportable(self):
        # stringifying ints/None would ship mutated content under the
        # same content-addressed id; the frame must fall back to recompute
        frame = DataFrame({"mixed": np.array([1, None, "c"], dtype=object)})
        assert encode_payload(frame) is None


class Step(DataOperation):
    def __init__(self, tag):
        super().__init__("step", params={"tag": tag})

    def run(self, underlying_data):
        return underlying_data


class TestWorkloadCodec:
    def test_structure_roundtrip(self):
        dag = WorkloadDAG()
        src = dag.add_source("src", payload=DataFrame({"x": np.arange(4.0)}))
        a = dag.add_operation([src], Step(0))
        b = dag.add_operation([src], Step(1))
        joined = dag.add_operation([a, b], Step("join"))
        dag.vertex(a).record_result(DataFrame({"x": np.arange(4.0)}), 1.0)
        dag.vertex(b).record_result(DataFrame({"x": np.arange(4.0) + 1}), 1.0)
        dag.vertex(joined).record_result(DataFrame({"x": np.arange(4.0) + 2}), 1.0)
        dag.mark_terminal(joined)

        decoded = decode_workload(encode_workload(dag, include_payloads=True))
        decoded.validate()
        assert set(decoded.graph.nodes) == set(dag.graph.nodes)
        assert set(decoded.graph.edges) == set(dag.graph.edges)
        assert decoded.terminals == dag.terminals
        # operation identity survives (hashes are carried, not recomputed)
        assert (
            decoded.incoming_operation(joined).op_hash
            == dag.incoming_operation(joined).op_hash
        )
        assert decoded.vertex(joined).computed
        assert decoded.vertex(joined).meta.schema == dag.vertex(joined).meta.schema

    def test_payload_free_encoding_keeps_flags(self):
        dag = WorkloadDAG()
        src = dag.add_source("src", payload=DataFrame({"x": np.arange(4.0)}))
        step = dag.add_operation([src], Step(0))
        dag.mark_terminal(step)
        decoded = decode_workload(encode_workload(dag, include_payloads=False))
        assert decoded.vertex(src).computed
        assert decoded.vertex(src).data is None


class TestEndToEnd:
    def test_plan_commit_reuse_and_stats_over_tcp(self):
        script = wide_workload_script(3, 2, 0.05)
        with EGService(MaterializeAll()) as service:
            with ServiceTCPServer(service) as server:
                host, port = server.address
                with TCPServiceClient(
                    host, port, name="remote", cost_model=VirtualCostModel()
                ) as client:
                    assert client.ping() == 0
                    first = client.run_script(script, make_sources(), label="w1")
                    second = client.run_script(script, make_sources(), label="w2")
                    assert first.executed_vertices == 6
                    assert second.loaded_vertices == 3
                    assert second.executed_vertices == 0
                    stats = client.stats()
                    assert stats["commits_total"] == 2
                    assert stats["reuse_hit_rate"] == 0.5
            # the server-side EG holds the merged workloads
            assert service.eg.num_vertices == 7

    def test_two_tcp_clients_share_the_graph(self):
        script = wide_workload_script(2, 2, 0.05)
        with EGService(MaterializeAll()) as service:
            with ServiceTCPServer(service) as server:
                host, port = server.address
                with TCPServiceClient(
                    host, port, name="a", cost_model=VirtualCostModel()
                ) as alice:
                    alice.run_script(script, make_sources())
                with TCPServiceClient(
                    host, port, name="b", cost_model=VirtualCostModel()
                ) as bob:
                    report = bob.run_script(script, make_sources())
                assert report.loaded_vertices > 0  # bob reuses alice's work

    def test_typed_errors_cross_the_wire(self):
        with EGService(MaterializeAll()) as service:
            with ServiceTCPServer(service) as server:
                host, port = server.address
                with TCPServiceClient(host, port) as client:
                    with pytest.raises(UnknownSessionError):
                        client.request(
                            {
                                "op": "plan",
                                "session_id": "s9999",
                                "workload": encode_workload(
                                    WorkloadDAG(), include_payloads=False
                                ),
                            }
                        )


class TestFraming:
    """EOF semantics: orderly close between frames vs a truncated frame."""

    def test_eof_at_frame_boundary_is_a_clean_close(self):
        import socket

        ours, theirs = socket.socketpair()
        try:
            theirs.close()
            assert _recv_frame(ours) is None
        finally:
            ours.close()

    def test_eof_inside_the_header_raises_truncated_frame(self):
        import socket

        ours, theirs = socket.socketpair()
        try:
            theirs.sendall(b"\x00\x00")  # half a length prefix
            theirs.close()
            with pytest.raises(TruncatedFrameError):
                _recv_frame(ours)
        finally:
            ours.close()

    def test_eof_inside_the_body_raises_truncated_frame(self):
        import socket
        import struct

        ours, theirs = socket.socketpair()
        try:
            theirs.sendall(struct.pack(">I", 50) + b"0123456789")  # 10 of 50
            theirs.close()
            with pytest.raises(TruncatedFrameError):
                _recv_frame(ours)
        finally:
            ours.close()

    def test_truncated_frame_is_a_connection_error(self):
        # callers matching on ConnectionError (and on ServiceError) both
        # catch it; neither mistakes it for an orderly shutdown
        assert issubclass(TruncatedFrameError, ConnectionError)
