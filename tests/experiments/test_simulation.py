"""Tests for the collaborative-community simulation."""

import pytest

from repro.experiments.simulation import EventMix, simulate_community
from repro.workloads.kaggle import KAGGLE_WORKLOADS

PUBLISHED = [KAGGLE_WORKLOADS[1], KAGGLE_WORKLOADS[2]]
DERIVED = {
    0: [KAGGLE_WORKLOADS[4], KAGGLE_WORKLOADS[5]],
    1: [KAGGLE_WORKLOADS[6]],
}


class TestEventMix:
    def test_defaults_sum_to_one(self):
        EventMix()

    def test_invalid_mix_rejected(self):
        with pytest.raises(ValueError, match="sum to 1"):
            EventMix(repeat=0.9, modify=0.9, fresh=0.1)


class TestSimulation:
    def test_event_stream_length(self, tiny_home_credit):
        result = simulate_community(
            PUBLISHED, DERIVED, tiny_home_credit, n_events=8, seed=1
        )
        assert len(result.events) == 8
        assert len(result.optimizer_times) == 8
        assert len(result.baseline_times) == 8

    def test_event_kinds_valid(self, tiny_home_credit):
        result = simulate_community(
            PUBLISHED, DERIVED, tiny_home_credit, n_events=12, seed=2
        )
        assert set(result.events) <= {"repeat", "modify", "fresh"}

    def test_deterministic_given_seed(self, tiny_home_credit):
        a = simulate_community(
            PUBLISHED, DERIVED, tiny_home_credit, n_events=6, seed=3,
            measure_baseline=False,
        )
        b = simulate_community(
            PUBLISHED, DERIVED, tiny_home_credit, n_events=6, seed=3,
            measure_baseline=False,
        )
        assert a.events == b.events

    def test_artifacts_reused_across_events(self, tiny_home_credit):
        result = simulate_community(
            PUBLISHED,
            DERIVED,
            tiny_home_credit,
            n_events=10,
            mix=EventMix(repeat=1.0, modify=0.0, fresh=0.0),
            seed=0,
            measure_baseline=False,
        )
        # pure repeats: after the first executions everything is loaded
        assert result.loaded_artifacts > 0
        assert result.events == ["repeat"] * 10

    def test_saving_fraction_bounds(self, tiny_home_credit):
        result = simulate_community(
            PUBLISHED, DERIVED, tiny_home_credit, n_events=10, seed=4
        )
        assert result.saving_fraction < 1.0
        assert result.optimizer_total > 0.0
        assert result.baseline_total > 0.0

    def test_cumulative_lengths(self, tiny_home_credit):
        result = simulate_community(
            PUBLISHED, DERIVED, tiny_home_credit, n_events=5, seed=5
        )
        assert len(result.cumulative("optimizer")) == 5
        assert len(result.cumulative("baseline")) == 5

    def test_no_baseline_mode(self, tiny_home_credit):
        result = simulate_community(
            PUBLISHED, DERIVED, tiny_home_credit, n_events=5, seed=6,
            measure_baseline=False,
        )
        assert result.baseline_times == []
        assert result.saving_fraction == 0.0
