"""Adaptive swarm runs: bit-identical convergence, opt-in reporting."""

from repro.experiments.swarm import run_swarm
from repro.learn import AdaptiveConfig
from repro.storage.tiered import TieredArtifactStore


def _swarm(adaptive: bool, **kwargs):
    kwargs.setdefault("clients", 3)
    kwargs.setdefault("rounds", 2)
    kwargs.setdefault("op_seconds", 0.005)
    kwargs.setdefault("batch_linger_s", 0.01)
    return run_swarm(adaptive=adaptive, **kwargs)


class TestAdaptiveConvergence:
    def test_adaptive_run_still_matches_sequential_replay(self):
        result = _swarm(adaptive=True)
        assert result.adaptive is True
        assert result.fingerprint_match is True

    def test_static_and_adaptive_produce_identical_egs(self):
        # the learned policies change costs and tier placement only —
        # the merged EG content must be byte-identical either way
        static = _swarm(adaptive=False)
        adaptive = _swarm(adaptive=True)
        assert static.concurrent_fingerprint == adaptive.concurrent_fingerprint

    def test_adaptive_with_tiered_store_under_pressure(self):
        result = _swarm(
            adaptive=True,
            store=TieredArtifactStore(hot_budget_bytes=64 * 1024),
        )
        assert result.fingerprint_match is True
        assert result.hot_hit_ratio is not None

    def test_sharded_adaptive_run_converges(self):
        result = _swarm(adaptive=True, clients=4, shards=2)
        assert result.shards == 2
        assert result.fingerprint_match is True
        assert result.adaptive is True


class TestAdaptiveReporting:
    def test_static_run_carries_no_adaptive_state(self):
        result = _swarm(adaptive=False)
        assert result.adaptive is False
        assert result.adaptive_report == {}

    def test_adaptive_report_covers_predictors_and_sizer(self):
        result = _swarm(adaptive=True)
        report = result.adaptive_report
        assert set(report["predictors"]) == {
            "load_hot",
            "load_cold",
            "compute",
            "merge",
        }
        assert report["batch_sizer"]["batches_observed"] > 0

    def test_custom_config_is_honoured(self):
        config = AdaptiveConfig(min_samples=3, min_linger_s=0.001, max_linger_s=0.05)
        result = _swarm(adaptive=True, adaptive_config=config)
        assert result.fingerprint_match is True
        sizer = result.adaptive_report["batch_sizer"]
        assert 0.001 <= sizer["linger_s"] <= 0.05
