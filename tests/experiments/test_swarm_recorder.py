"""Ground truth for tail sampling: 64 clients, recorder vs. full record.

An unbounded :class:`InMemorySink` rides the same tracer as the
:class:`FlightRecorder`, so every span the recorder saw is on record.
Re-running the published decision procedure over the complete record
must reproduce the recorder's kept set exactly — 100% of slow, errored
and shed traces kept, the rest head-sampled by the deterministic
``crc32`` rule.
"""

import zlib

from repro.experiments.swarm import run_swarm
from repro.obs.plane import FlightRecorder
from repro.obs.sinks import InMemorySink
from repro.obs.trace import Tracer, use_tracer

SHED_NAMES = {
    "QuotaExceededError",
    "PlanShedError",
    "CommitShedError",
    "AdmissionError",
    "ServiceOverloadedError",
}

SLOW_THRESHOLD_S = 0.03
HEAD_SAMPLE_EVERY = 4


def expected_decision(spans) -> str:
    root = next((s for s in spans if s.parent_id is None), None)
    if root is None:
        root = min(spans, key=lambda s: s.start_s)
    for span in spans:
        error = span.attributes.get("error")
        if span.name == "transport.shed" or error in SHED_NAMES:
            return "shed"
    if any(span.attributes.get("error") for span in spans):
        return "error"
    if root.duration_s >= SLOW_THRESHOLD_S:
        return "slow"
    if zlib.crc32(root.trace_id.encode()) % HEAD_SAMPLE_EVERY == 0:
        return "sampled"
    return "dropped"


class TestSwarmGroundTruth:
    def test_recorder_matches_full_record_across_64_clients(self):
        memory = InMemorySink()
        recorder = FlightRecorder(
            slow_threshold_s=SLOW_THRESHOLD_S,
            head_sample_every=HEAD_SAMPLE_EVERY,
            keep_last=4096,
            max_traces=4096,
        )
        with use_tracer(Tracer(sinks=[memory], keep_last=1)):
            result = run_swarm(
                clients=64,
                rounds=1,
                op_seconds=0.002,
                batch_linger_s=0.05,
                replay=False,
                flight_recorder=recorder,
            )
        assert result.workloads == 64

        by_trace: dict[str, list] = {}
        for span in memory.spans:
            by_trace.setdefault(span.trace_id, []).append(span)
        roots = [
            s for s in memory.spans
            if s.parent_id is None and s.name == "client.workload"
        ]
        assert len(roots) == 64

        # the recorder saw exactly what the unbounded sink saw
        stats = recorder.stats()
        assert stats["spans_seen"] == len(memory.spans)
        assert stats["span_overflow"] == 0
        assert stats["evicted_traces"] == 0

        expected = {
            trace_id: expected_decision(spans)
            for trace_id, spans in by_trace.items()
        }
        actual = {
            t["trace_id"]: t["decision"]
            for t in recorder.kept_traces(limit=None)
        }
        assert actual == {
            trace_id: decision
            for trace_id, decision in expected.items()
            if decision != "dropped"
        }

        # the tail-sampling contract: no slow/errored/shed trace lost
        must_keep = {
            trace_id
            for trace_id, decision in expected.items()
            if decision in ("shed", "error", "slow")
        }
        assert must_keep <= set(actual)
        assert must_keep, "the swarm produced no slow traces to protect"

        # per-decision tallies line up with the ground truth
        from collections import Counter

        tallies = Counter(expected.values())
        for decision in ("shed", "error", "slow", "sampled", "dropped"):
            assert stats["decisions"][decision] == tallies.get(decision, 0)

        # the swarm result carried the same picture out
        assert result.recorder_stats["spans_seen"] == stats["spans_seen"]
