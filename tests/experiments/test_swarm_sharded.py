"""Sharded swarm: concurrent tenants over N shards converge bit-identically."""

import pytest

from repro.experiments.swarm import (
    run_swarm,
    sharded_swarm_script,
    sharded_swarm_sources,
)
from repro.shard import shard_of_source
from repro.storage.tiered import TieredArtifactStore


class TestShardedSwarm:
    def test_sharded_run_converges_to_sequential_replay(self):
        result = run_swarm(
            clients=4,
            rounds=3,
            op_seconds=0.005,
            batch_linger_s=0.01,
            shards=2,
        )
        assert result.shards == 2
        assert result.workloads == 12
        assert result.fingerprint_match is True
        assert len(result.shard_stats) == 2
        # round 2 is the cross-group join round, so stubs must exist
        assert result.stub_edges > 0
        # every committed workload merged on some shard exactly once per piece
        assert (
            sum(stats.merged_workloads for stats in result.shard_stats)
            >= result.workloads
        )

    def test_single_shard_keeps_the_classic_service_path(self):
        result = run_swarm(
            clients=2, rounds=2, op_seconds=0.005, batch_linger_s=0.01
        )
        assert result.shards == 1
        assert result.shard_stats == []
        assert result.stub_edges == 0
        assert result.fingerprint_match is True

    def test_custom_store_is_rejected_for_sharded_runs(self):
        with pytest.raises(ValueError, match="store"):
            run_swarm(clients=2, rounds=1, shards=2, store=TieredArtifactStore())


class TestShardedWorkloadFamily:
    def test_sources_are_balanced_across_shards(self):
        shards = 4
        sources = sharded_swarm_sources(shards)
        owners = sorted(shard_of_source(name, shards) for name in sources)
        assert owners == list(range(shards))

    def test_join_rounds_reference_two_groups(self):
        calls: list[str] = []

        class FakeNode:
            def add(self, _op, *others):
                return self

            def terminal(self):
                return self

        class FakeWorkspace:
            def source(self, name, _payload):
                calls.append(name)
                return FakeNode()

        sources = sharded_swarm_sources(2)
        sharded_swarm_script(0, 2, 2)(FakeWorkspace(), sources)
        assert len(calls) == 2  # own group + the joined neighbour
        sharded_swarm_script(0, 0, 2)(FakeWorkspace(), sources)
        assert len(calls) == 3  # non-join rounds touch one source
