"""Unit tests for the experiment runner helpers and result containers."""

import pytest

from repro.client.executor import ExecutionReport
from repro.experiments.runner import (
    PAPER_TOTAL_ARTIFACT_GB,
    SequenceResult,
    baseline_times,
    make_optimizer,
    run_sequence,
    scaled_budget,
)
from repro.workloads.kaggle import KAGGLE_WORKLOADS


class TestSequenceResult:
    def _result(self, times):
        result = SequenceResult()
        for t in times:
            report = ExecutionReport()
            report.total_time = t
            result.reports.append(report)
        return result

    def test_times(self):
        assert self._result([1.0, 2.0]).times == [1.0, 2.0]

    def test_cumulative(self):
        assert self._result([1.0, 2.0, 3.0]).cumulative_times == [1.0, 3.0, 6.0]

    def test_total(self):
        assert self._result([1.5, 2.5]).total_time == 4.0

    def test_empty(self):
        empty = self._result([])
        assert empty.times == []
        assert empty.cumulative_times == []
        assert empty.total_time == 0.0


class TestPaperScaling:
    def test_full_paper_budget_is_identity(self):
        assert scaled_budget(PAPER_TOTAL_ARTIFACT_GB, 12345) == pytest.approx(12345)

    def test_linear_in_gb(self):
        assert scaled_budget(8.0, 1300) == pytest.approx(2 * scaled_budget(4.0, 1300))


class TestRunSequenceIntegration:
    def test_tracks_store_trajectory(self, tiny_home_credit):
        optimizer = make_optimizer("SA", 10_000_000)
        scripts = [KAGGLE_WORKLOADS[1], KAGGLE_WORKLOADS[4]]
        sequence = run_sequence(optimizer, scripts, tiny_home_credit)
        assert len(sequence.physical_bytes) == 2
        assert len(sequence.logical_bytes) == 2
        assert sequence.physical_bytes[1] >= sequence.physical_bytes[0] > 0

    def test_baseline_times_positive(self, tiny_home_credit):
        times = baseline_times([KAGGLE_WORKLOADS[1]], tiny_home_credit)
        assert len(times) == 1
        assert times[0] > 0.0

    @pytest.mark.parametrize("strategy", ["SA", "HM", "HL", "ALL", "NONE"])
    def test_every_strategy_completes_a_sequence(self, strategy, tiny_home_credit):
        optimizer = make_optimizer(strategy, 5_000_000)
        sequence = run_sequence(optimizer, [KAGGLE_WORKLOADS[1]], tiny_home_credit)
        assert sequence.reports[0].terminal_values
