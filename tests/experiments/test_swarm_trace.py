"""End-to-end tracing over the swarm: one trace file, four subsystems."""

import json

from repro.experiments.swarm import run_swarm
from repro.obs.sinks import ChromeTraceSink, InMemorySink
from repro.obs.trace import Tracer, use_tracer
from repro.storage.tiered import TieredArtifactStore


def run_traced_swarm(tmp_path):
    path = tmp_path / "swarm_trace.json"
    memory = InMemorySink()
    tracer = Tracer(sinks=[ChromeTraceSink(path), memory])
    with use_tracer(tracer):
        # a tiny hot budget forces demotions so store spans show up too
        result = run_swarm(
            clients=3,
            rounds=2,
            op_seconds=0.005,
            batch_linger_s=0.05,
            replay=False,
            store=TieredArtifactStore(hot_budget_bytes=512),
        )
    tracer.close()
    return path, memory.spans, result


class TestSwarmTrace:
    def test_chrome_document_covers_four_subsystems(self, tmp_path):
        path, spans, result = run_traced_swarm(tmp_path)
        assert result.workloads == 6
        assert result.stats.commits_total == 6

        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        categories = {e["cat"] for e in events if e["ph"] == "X"}
        # reuse planner, executor, tiered store, merge worker (+ client)
        assert {"reuse", "executor", "store", "service"} <= categories
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert {
            "client.workload",
            "reuse.plan",
            "executor.compute",
            "store.demote",
            "service.plan",
            "service.commit",
            "service.merge_batch",
            "service.publish",
        } <= names

    def test_service_spans_correlate_with_client_traces(self, tmp_path):
        _path, spans, _result = run_traced_swarm(tmp_path)
        workloads = [s for s in spans if s.name == "client.workload"]
        assert len(workloads) == 6
        for workload in workloads:
            in_trace = {s.name for s in spans if s.trace_id == workload.trace_id}
            # planning happens inline; the commit is stitched back in by the
            # merge worker through the ticket's captured parent context
            assert "service.plan" in in_trace
            assert "service.commit" in in_trace
        # every commit belongs to exactly one client workload trace
        commits = [s for s in spans if s.name == "service.commit"]
        assert len(commits) == 6
        assert {c.trace_id for c in commits} == {w.trace_id for w in workloads}

    def test_queue_wait_is_stamped_on_commit_spans(self, tmp_path):
        _path, spans, _result = run_traced_swarm(tmp_path)
        commits = [s for s in spans if s.name == "service.commit"]
        assert commits
        for commit in commits:
            assert commit.attributes["queue_wait_s"] >= 0.0
            assert "version" in commit.attributes
