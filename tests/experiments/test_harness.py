"""Small-scale runs of every figure/table harness (shape checks only)."""

import pytest

from repro.experiments import (
    fig4_repeated_runs,
    fig5_sequence,
    fig6_fig7_materialization,
    fig8a_model_benchmarking,
    fig8b_alpha_sweep,
    fig9_reuse_comparison,
    fig9d_reuse_overhead,
    fig10_warmstarting,
    make_optimizer,
    scaled_budget,
    table1,
    total_artifact_bytes,
)
from repro.workloads.openml import sample_pipeline_specs
from repro.workloads.synthetic_dag import SyntheticDAGConfig


@pytest.fixture(scope="module")
def hc_total(tiny_home_credit):
    return total_artifact_bytes(tiny_home_credit)


class TestRunnerHelpers:
    def test_scaled_budget_fractions(self):
        assert scaled_budget(130.0, 1000) == pytest.approx(1000.0)
        assert scaled_budget(65.0, 1000) == pytest.approx(500.0)

    def test_scaled_budget_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scaled_budget(0.0, 1000)

    def test_make_optimizer_strategies(self):
        for strategy in ("SA", "HM", "HL", "ALL", "NONE"):
            optimizer = make_optimizer(strategy, 1000)
            assert optimizer.eg is not None

    def test_make_optimizer_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_optimizer("XX", 1000)
        with pytest.raises(ValueError):
            make_optimizer("SA", 1000, reuse="XX")


class TestTable1:
    def test_rows_cover_all_workloads(self, tiny_home_credit):
        rows = table1(tiny_home_credit)
        assert [r.workload_id for r in rows] == list(range(1, 9))
        assert all(r.n_artifacts > 0 for r in rows)
        assert all(r.size_bytes > 0 for r in rows)

    def test_w3_is_largest_of_first_three(self, tiny_home_credit):
        rows = {r.workload_id: r for r in table1(tiny_home_credit)}
        assert rows[3].size_bytes > rows[1].size_bytes
        assert rows[3].size_bytes > rows[2].size_bytes


class TestFig4And5:
    def test_fig4_repeat_run_much_faster(self, tiny_home_credit, hc_total):
        budget = scaled_budget(16, hc_total)
        result = fig4_repeated_runs(tiny_home_credit, budget, workload_ids=(2,))
        times = result.times[2]
        assert times["CO"][1] < times["CO"][0] * 0.5
        assert times["KG"][1] > times["CO"][1]

    def test_fig5_structure(self, tiny_home_credit, hc_total):
        budget = scaled_budget(16, hc_total)
        result = fig5_sequence(tiny_home_credit, budget)
        # time-shape (CO < KG) asserted at bench scale; at 60-row test
        # scale only the structure is stable
        assert set(result.cumulative) == {"CO", "HL", "KG"}
        assert all(len(curve) == 8 for curve in result.cumulative.values())
        for curve in result.cumulative.values():
            assert all(a <= b for a, b in zip(curve, curve[1:]))


class TestFig6And7:
    def test_materialization_shapes(self, tiny_home_credit, hc_total):
        result = fig6_fig7_materialization(
            tiny_home_credit, hc_total, budgets_gb=(16.0,), strategies=("SA", "HM", "ALL")
        )
        sa_stored = result.stored_sizes["SA"][16.0][-1]
        hm_stored = result.stored_sizes["HM"][16.0][-1]
        all_stored = result.stored_sizes["ALL"][16.0][-1]
        # dedup lets SA store at least as much logical volume as HM
        assert sa_stored >= hm_stored
        assert all_stored >= sa_stored
        curve = result.speedup_curve("SA", 16.0)
        assert len(curve) == 8
        assert all(v > 0.0 for v in curve)  # time-shape asserted at bench scale


class TestFig8:
    def test_model_benchmarking_structure(self, tiny_credit_g):
        specs = sample_pipeline_specs(6, seed=1)
        result = fig8a_model_benchmarking(specs, tiny_credit_g, budget_bytes=10_000_000)
        assert len(result.cumulative_co) == len(result.cumulative_oml) == 6
        # the gold standard can only ever point at an already-seen workload
        assert all(g <= i for i, g in enumerate(result.gold_indices))

    def test_alpha_sweep_delta_nonnegative_at_end(self, tiny_credit_g):
        specs = sample_pipeline_specs(6, seed=1)
        result = fig8b_alpha_sweep(specs, tiny_credit_g, alphas=(0.0, 1.0))
        deltas = result.delta_vs_alpha1(0.0)
        assert len(deltas) == 6
        assert result.delta_vs_alpha1(1.0) == [0.0] * 6


class TestFig9:
    def test_reuse_comparison_shapes(self, tiny_home_credit, hc_total):
        budget = scaled_budget(16, hc_total)
        result = fig9_reuse_comparison(
            tiny_home_credit, budget, materializers=("SA",), reusers=("LN", "ALL_C")
        )
        ln = result.cumulative["SA"]["LN"]
        all_c = result.cumulative["SA"]["ALL_C"]
        assert len(ln) == len(all_c) == 8
        assert all(a <= b for a, b in zip(ln, ln[1:]))  # cumulative is monotone
        speedup = result.speedup_vs_all_c("SA", "LN")
        assert all(v > 0.0 for v in speedup)

    def test_overhead_linear_vs_polynomial(self):
        config = SyntheticDAGConfig(min_nodes=60, max_nodes=120)
        result = fig9d_reuse_overhead(n_workloads=5, config=config, seed=3)
        assert result.plans_equal_cost
        assert result.cumulative_hl[-1] > result.cumulative_ln[-1]
        assert result.final_ratio > 1.0


class TestFig10:
    def test_warmstarting_runs(self, tiny_credit_g):
        # sample enough specs that same-type model pairs appear
        specs = sample_pipeline_specs(12, seed=0)
        result = fig10_warmstarting(specs, tiny_credit_g, budget_bytes=10_000_000)
        assert len(result.cumulative_co_with) == 12
        assert len(result.cumulative_delta_accuracy) == 12
        assert result.warmstarted_runs > 0  # same-type model pairs matched
