"""Smoke tests for the experiment CLI (tiny sizes)."""

import pytest

from repro.experiments.cli import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1", "--apps", "60"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert out.count("\n") >= 9

    def test_fig5(self, capsys):
        assert main(["fig5", "--apps", "60"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "CO" in out and "KG" in out

    def test_fig9d(self, capsys):
        assert main(["fig9d", "--workloads", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9d" in out

    def test_swarm(self, capsys):
        assert main(["swarm", "--clients", "4", "--rounds", "2"]) == 0
        out = capsys.readouterr().out
        assert "Swarm: 4 concurrent clients" in out
        assert "sequential commit-order replay identical: True" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])
