"""Multi-process swarm: per-shard worker processes converge bit-identically."""

import pytest

from repro.experiments.swarm import run_swarm
from repro.storage.tiered import TieredArtifactStore


class TestMultiprocSwarm:
    def test_multiproc_run_converges_to_sequential_replay(self):
        result = run_swarm(
            clients=4,
            rounds=3,
            op_seconds=0.005,
            batch_linger_s=0.01,
            shards=2,
            processes=2,
        )
        assert result.shards == 2
        assert result.processes == 2
        assert result.workloads == 12
        assert result.fingerprint_match is True
        assert len(result.shard_stats) == 2
        # round 2 is the cross-group join round, so stubs must exist
        assert result.stub_edges > 0
        assert (
            sum(stats.merged_workloads for stats in result.shard_stats)
            >= result.workloads
        )

    def test_multiproc_run_over_tcp_transport(self):
        result = run_swarm(
            clients=2,
            rounds=2,
            op_seconds=0.005,
            batch_linger_s=0.01,
            shards=2,
            processes=2,
            transport="tcp",
        )
        assert result.processes == 2
        assert result.fingerprint_match is True

    def test_processes_must_equal_shards(self):
        with pytest.raises(ValueError, match="processes"):
            run_swarm(clients=2, rounds=1, shards=4, processes=2)

    def test_custom_store_is_rejected_across_process_boundaries(self):
        with pytest.raises(ValueError, match="store"):
            run_swarm(
                clients=2,
                rounds=1,
                shards=2,
                processes=2,
                store=TieredArtifactStore(),
            )

    def test_adaptive_policies_are_in_process_only(self):
        with pytest.raises(ValueError, match="adaptive"):
            run_swarm(clients=2, rounds=1, shards=2, processes=2, adaptive=True)
