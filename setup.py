"""Thin setuptools shim.

The execution environment has no `wheel` package, so PEP 517 editable
installs fail; this shim enables the legacy path:
    pip install -e . --no-use-pep517 --no-build-isolation
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
