"""Extending the system with a custom operation (paper Listing 2).

The paper's extensibility API: subclass ``DataOperation`` (or
``TrainOperation``), declare name/return-type/parameters, and implement
``run``.  The optimizer needs nothing else — sizes and compute times are
measured automatically, and the operation hash makes the new artifact
reusable across workloads.

Run:  python examples/custom_operation.py
"""

import numpy as np

from repro import CollaborativeOptimizer, DataFrame, MaterializeAll
from repro.graph.operations import DataOperation


class Winsorize(DataOperation):
    """Clip a numeric column to the [lo, hi] percentile range."""

    def __init__(self, column: str, lo: float = 1.0, hi: float = 99.0):
        super().__init__("winsorize", params={"column": column, "lo": lo, "hi": hi})

    def run(self, underlying_data: DataFrame) -> DataFrame:
        column = self.params["column"]
        values = underlying_data.values(column).astype(float)
        low, high = np.percentile(values, [self.params["lo"], self.params["hi"]])
        return underlying_data.map_column(
            column, lambda v: np.clip(v, low, high), operation_hash=self.op_hash
        )


def script(ws, sources):
    data = ws.source("measurements", sources["measurements"])
    # the paper's lower-level API: node.add(operation)
    cleaned = data.add(Winsorize("reading", lo=5.0, hi=95.0))
    cleaned.describe().terminal()


def main() -> None:
    rng = np.random.default_rng(3)
    readings = rng.normal(100.0, 15.0, size=5000)
    readings[:20] = 10_000.0  # corrupt outliers
    sources = {"measurements": DataFrame({"reading": readings})}

    optimizer = CollaborativeOptimizer(MaterializeAll())
    report = optimizer.run_script(script, sources)
    summary = next(iter(report.terminal_values.values()))
    print("summary of the winsorized column:")
    for statistic, value in summary["reading"].items():
        print(f"  {statistic:>6}: {value:,.2f}")

    report = optimizer.run_script(script, sources)
    print(
        f"second run loaded {report.loaded_vertices} artifact(s) and executed "
        f"{report.executed_vertices} — the custom operation is fully reusable"
    )


if __name__ == "__main__":
    main()
