"""Kaggle competition scenario — the paper's motivating example (Section 2).

Simulates the *Home Credit Default Risk* competition: the three popular
kernels (workloads 1-3) are published, then other users run modified
copies (workloads 4-8).  The collaborative optimizer serves every run from
one shared Experiment Graph; the same scripts are also executed eagerly
("the Kaggle way") for comparison.

Run:  python examples/kaggle_competition.py [n_applications]
"""

import sys

from repro import CollaborativeOptimizer
from repro.eg.storage import DedupArtifactStore
from repro.materialization import StorageAwareMaterializer
from repro.workloads.home_credit import generate_home_credit
from repro.workloads.kaggle import KAGGLE_WORKLOADS, workload_description


def main() -> None:
    n_applications = int(sys.argv[1]) if len(sys.argv) > 1 else 1000
    print(f"Generating synthetic Home Credit data ({n_applications} applications)...")
    sources = generate_home_credit(n_applications=n_applications, seed=42)
    for name, frame in sources.items():
        print(f"  {name:>24}: {frame.num_rows:>7} rows x {frame.num_columns} cols")

    optimizer = CollaborativeOptimizer(
        materializer=StorageAwareMaterializer(budget_bytes=200_000_000),
        store=DedupArtifactStore(),
    )

    print("\nRunning the 8 competition workloads through the optimizer:")
    print(f"{'id':>3} {'CO (s)':>8} {'KG (s)':>8} {'reused':>7}  description")
    total_co = total_kg = 0.0
    for workload_id, script in KAGGLE_WORKLOADS.items():
        report = optimizer.run_script(script, sources)
        baseline = CollaborativeOptimizer.run_baseline(script, sources)
        total_co += report.total_time
        total_kg += baseline.total_time
        print(
            f"{workload_id:>3} {report.total_time:>8.2f} {baseline.total_time:>8.2f} "
            f"{report.loaded_vertices:>7}  {workload_description(workload_id)[:58]}"
        )

    saving = 100.0 * (1.0 - total_co / total_kg)
    print(f"\nCumulative: optimizer {total_co:.1f}s vs baseline {total_kg:.1f}s "
          f"({saving:.0f}% saved — paper reports ~50%)")
    print(
        f"Experiment Graph: {optimizer.eg.num_vertices} vertices; store: "
        f"{optimizer.store_bytes / 1e6:.1f} MB physical (incl. raw sources), "
        f"{optimizer.eg.materialized_artifact_bytes() / 1e6:.1f} MB of derived artifacts"
    )

    print("\nA user re-runs the most popular kernel (workload 1):")
    report = optimizer.run_script(KAGGLE_WORKLOADS[1], sources)
    print(
        f"  {report.total_time:.4f}s — {report.loaded_vertices} artifacts loaded, "
        f"{report.executed_vertices} operations executed"
    )


if __name__ == "__main__":
    main()
