"""OpenML pipelines with warmstarting (paper Sections 6.2 and 7.5).

Runs a stream of sampled scikit-learn-style pipelines over a credit-g-like
task three ways: eagerly (the OpenML baseline), through the optimizer, and
through the optimizer with model warmstarting.  Warmstartable trainers
(logistic regression, gradient boosting) are initialized from the best
stored model of the same type trained on the same artifact.

Run:  python examples/openml_warmstarting.py [n_pipelines]
"""

import sys

from repro import CollaborativeOptimizer
from repro.eg.storage import DedupArtifactStore
from repro.materialization import StorageAwareMaterializer
from repro.workloads.openml import (
    generate_credit_g,
    make_pipeline_script,
    sample_pipeline_specs,
)


def build_optimizer(warmstarting: bool) -> CollaborativeOptimizer:
    return CollaborativeOptimizer(
        materializer=StorageAwareMaterializer(budget_bytes=100_000_000),
        store=DedupArtifactStore(),
        warmstarting=warmstarting,
    )


def main() -> None:
    n_pipelines = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    sources = generate_credit_g(n_rows=1000, seed=31)
    specs = sample_pipeline_specs(n_pipelines, seed=7)
    scripts = [make_pipeline_script(spec) for spec in specs]
    print(f"{n_pipelines} pipelines over credit-g "
          f"({sources['openml_train'].num_rows} train rows)")

    oml_time = sum(
        CollaborativeOptimizer.run_baseline(script, sources).total_time
        for script in scripts
    )

    co = build_optimizer(warmstarting=False)
    co_time = sum(co.run_script(script, sources).total_time for script in scripts)

    cow = build_optimizer(warmstarting=True)
    cow_time = 0.0
    warmstarted = 0
    qualities = []
    for script in scripts:
        report = cow.run_script(script, sources)
        cow_time += report.total_time
        warmstarted += report.warmstarted_vertices
        qualities.extend(report.model_qualities.values())

    print(f"\n{'system':>22} {'total (s)':>10}")
    print(f"{'OML (eager)':>22} {oml_time:>10.2f}")
    print(f"{'CO without warmstart':>22} {co_time:>10.2f}")
    print(f"{'CO with warmstart':>22} {cow_time:>10.2f}")
    print(f"\n{warmstarted} of {n_pipelines} training operations were warmstarted")
    if qualities:
        print(f"mean accuracy of freshly trained models: "
              f"{sum(qualities) / len(qualities):.3f}")
    print(f"Experiment Graph holds {cow.eg.num_vertices} vertices")


if __name__ == "__main__":
    main()
