"""Quickstart — the collaborative optimizer in ~60 lines.

Two users run similar ML scripts against the same dataset.  The first run
executes everything and populates the Experiment Graph; the second user's
script (a modified copy, as is typical on Kaggle) reuses the stored
feature artifacts and only trains its own model.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CollaborativeOptimizer,
    DataFrame,
    DedupArtifactStore,
    StorageAwareMaterializer,
)
from repro.ml import GradientBoostingClassifier, LogisticRegression


def make_dataset(n_rows: int = 2000) -> DataFrame:
    rng = np.random.default_rng(0)
    age = rng.uniform(18, 70, size=n_rows)
    income = rng.lognormal(10.5, 0.6, size=n_rows)
    debt = income * rng.uniform(0.0, 1.5, size=n_rows)
    label = ((debt / income > 0.9) & (age < 35)).astype(np.int64)
    return DataFrame({"age": age, "income": income, "debt": debt, "default": label})


def alice_script(ws, sources):
    """Alice: engineer a ratio feature, train logistic regression."""
    data = ws.source("loans", sources["loans"])
    features = data.add_column(
        "debt_ratio", lambda f: f.values("debt") / f.values("income"), "debt_ratio"
    )
    X = features[["age", "income", "debt_ratio"]]
    y = data["default"]
    model = X.fit(LogisticRegression(max_iter=60), y=y, scorer="train_auc")
    model.terminal()


def bob_script(ws, sources):
    """Bob: copies Alice's features, swaps in gradient boosting."""
    data = ws.source("loans", sources["loans"])
    features = data.add_column(
        "debt_ratio", lambda f: f.values("debt") / f.values("income"), "debt_ratio"
    )
    X = features[["age", "income", "debt_ratio"]]
    y = data["default"]
    model = X.fit(
        GradientBoostingClassifier(n_estimators=20, max_depth=3),
        y=y,
        scorer="train_auc",
    )
    model.terminal()


def main() -> None:
    sources = {"loans": make_dataset()}
    optimizer = CollaborativeOptimizer(
        materializer=StorageAwareMaterializer(budget_bytes=50_000_000),
        store=DedupArtifactStore(),
    )

    print("Alice runs her script (cold Experiment Graph):")
    report = optimizer.run_script(alice_script, sources)
    print(
        f"  executed {report.executed_vertices} operations, "
        f"loaded {report.loaded_vertices}, took {report.total_time:.3f}s"
    )

    print("Alice re-runs it (everything is materialized now):")
    report = optimizer.run_script(alice_script, sources)
    print(
        f"  executed {report.executed_vertices} operations, "
        f"loaded {report.loaded_vertices}, took {report.total_time:.4f}s"
    )

    print("Bob runs his modified copy (shares Alice's feature pipeline):")
    report = optimizer.run_script(bob_script, sources)
    print(
        f"  executed {report.executed_vertices} operations, "
        f"loaded {report.loaded_vertices}, took {report.total_time:.3f}s"
    )
    for vertex_id, quality in report.model_qualities.items():
        print(f"  Bob's model quality (train AUC): {quality:.3f}")

    print(
        f"Experiment Graph: {optimizer.eg.num_vertices} vertices, "
        f"store holds {optimizer.store_bytes / 1e3:.0f} KB"
    )


if __name__ == "__main__":
    main()
