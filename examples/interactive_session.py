"""An interactive (notebook-style) session with conditional control flow.

Cell-by-cell execution is the paper's interactive mode (Section 3.1): each
"cell" extends the workload DAG, already-computed vertices are pruned, and
only the new suffix runs.  Conditions are computed before branching
(Section 4.1's control-flow rule) via ``compute_node``.

Run:  python examples/interactive_session.py
"""

import numpy as np

from repro import CollaborativeOptimizer, DataFrame, MaterializeAll, Workspace
from repro.ml import GradientBoostingClassifier, LogisticRegression


def make_dataset() -> DataFrame:
    rng = np.random.default_rng(5)
    X = rng.normal(size=(1500, 3))
    nonlinear = 1.5 * ((X[:, 0] > 0) & (X[:, 1] > 0))
    y = (X @ [0.4, 0.3, 0.0] + nonlinear + rng.normal(scale=0.6, size=1500) > 0.4)
    return DataFrame(
        {"f0": X[:, 0], "f1": X[:, 1], "f2": X[:, 2], "label": y.astype(np.int64)}
    )


def main() -> None:
    optimizer = CollaborativeOptimizer(MaterializeAll())
    ws = Workspace()

    print("cell 1: load + quick look at the data")
    data = ws.source("events", make_dataset())
    summary = optimizer.compute_node(ws, data.describe())
    print(f"  label mean: {summary['label']['mean']:.3f}")

    print("cell 2: baseline logistic regression, check its quality")
    X, y = data[["f0", "f1", "f2"]], data["label"]
    baseline = X.fit(LogisticRegression(max_iter=60), y=y, scorer="train_auc")
    auc = optimizer.compute_node(ws, baseline.evaluate(X, y))
    print(f"  baseline AUC: {auc:.3f}")

    print("cell 3: branch on the computed condition")
    if auc < 0.85:
        print("  not good enough -> boost")
        model = X.fit(
            GradientBoostingClassifier(n_estimators=25, max_depth=3),
            y=y,
            scorer="train_auc",
        )
    else:
        print("  baseline suffices")
        model = baseline
    final_auc = optimizer.compute_node(ws, model.evaluate(X, y))
    print(f"  final model AUC: {final_auc:.3f}")

    print("cell 2 re-run (notebook users re-execute cells all the time):")
    auc_again = optimizer.compute_node(ws, baseline.evaluate(X, y))
    print(f"  served from client memory, same value: {auc_again == auc}")

    print(
        f"\nExperiment Graph now holds {optimizer.eg.num_vertices} vertices; "
        "a collaborator running the same cells would reuse all of them."
    )


if __name__ == "__main__":
    main()
