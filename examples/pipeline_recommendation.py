"""Pipeline recommendation from the Experiment Graph (paper Section 9).

After a collaborative platform has executed many user pipelines, the EG's
meta-data — operation chains, hyperparameters, model scores — doubles as
an AutoML knowledge base.  This example populates an EG with sampled
OpenML-style pipelines and then asks the advisor for (1) the best known
models, (2) the recipe behind the best one, and (3) hyperparameter
candidates for the next experiments.

Run:  python examples/pipeline_recommendation.py [n_pipelines]
"""

import sys

from repro import CollaborativeOptimizer, MaterializeAll
from repro.automl import PipelineAdvisor
from repro.workloads.openml import (
    generate_credit_g,
    make_pipeline_script,
    sample_pipeline_specs,
)


def main() -> None:
    n_pipelines = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    sources = generate_credit_g(n_rows=800, seed=31)
    optimizer = CollaborativeOptimizer(MaterializeAll())
    print(f"Populating the Experiment Graph with {n_pipelines} pipelines...")
    for spec in sample_pipeline_specs(n_pipelines, seed=11):
        optimizer.run_script(make_pipeline_script(spec), sources)

    advisor = PipelineAdvisor(optimizer.eg)

    print("\nTop 5 stored models (by test accuracy):")
    for model in advisor.best_models(source_name="openml_train", k=5):
        print(f"  {model.meta.model_type:>28}: q={model.quality:.3f}")

    print("\nRecipe of the best model:")
    for step in advisor.describe_best_pipeline(source_name="openml_train"):
        print(f"  {step}")

    best_type = advisor.best_models(k=1)[0].meta.model_type
    print(f"\nHyperparameter suggestions for {best_type}:")
    for suggestion in advisor.suggest_hyperparameters(best_type, k=3):
        quality = (
            f"q={suggestion.observed_quality:.3f}"
            if suggestion.observed_quality is not None
            else "unexplored"
        )
        print(f"  [{suggestion.origin:>9}] {suggestion.params} ({quality})")


if __name__ == "__main__":
    main()
