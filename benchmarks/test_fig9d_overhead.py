"""Figure 9d — planner overhead: linear-time LN vs polynomial Helix.

Paper shape: over 10,000 synthetic workloads of 500-2000 nodes, LN's
cumulative overhead grows linearly to ~80s while Helix's Edmonds-Karp
reaches ~3500s — a ~40x gap.  We run a scaled-down count (the ratio is the
reproduced quantity) with the same node range.
"""

from conftest import report, scaled

from repro.experiments import fig9d_reuse_overhead
from repro.workloads.synthetic_dag import SyntheticDAGConfig


def test_fig9d_planner_overhead(benchmark):
    n_workloads = scaled(30, minimum=5)
    config = SyntheticDAGConfig(min_nodes=500, max_nodes=2000)
    result = benchmark.pedantic(
        fig9d_reuse_overhead,
        kwargs={"n_workloads": n_workloads, "config": config, "seed": 0},
        rounds=1,
        iterations=1,
    )

    report("", f"== Figure 9d: cumulative reuse overhead over {n_workloads} synthetic workloads (s) ==")
    marks = sorted({n_workloads // 4, n_workloads // 2, n_workloads - 1})
    report(f"{'planner':>8} " + " ".join(f"{'#' + str(m + 1):>9}" for m in marks))
    report(f"{'LN':>8} " + " ".join(f"{result.cumulative_ln[m]:>9.3f}" for m in marks))
    report(f"{'HL':>8} " + " ".join(f"{result.cumulative_hl[m]:>9.3f}" for m in marks))
    report(
        f"    paper: 40x gap at 10k workloads; ours at {n_workloads}: "
        f"{result.final_ratio:.0f}x (plans cost-equal: {result.plans_equal_cost})"
    )

    assert result.final_ratio > 10.0, "Edmonds-Karp must be far slower than LN"
    assert result.cumulative_ln[-1] < result.cumulative_hl[-1]
