"""Multi-process shard merge throughput vs in-process sharding (perf gate).

Not a figure from the paper: this gates the multi-process scale-out of
the sharded Experiment Graph service.  The same concurrent 8-tenant
workload stream — four root-lineage groups with shared per-group
prefixes and periodic cross-group joins — is committed twice at 4
shards: once through :class:`~repro.shard.ProcessShardCoordinator`
(every shard in its own worker process behind the binary transport) and
once through the in-process :class:`~repro.shard.ShardedEGService`.

In one process the four merge workers contend on the interpreter lock,
so concurrent merges serialize; worker processes each own an
interpreter, so the merge-critical path (the busiest shard's total
merge seconds) shrinks with the core count.  The contract: both runs
(and a plain sequential ``Updater`` replay in each run's own commit
order) end bit-identical after flattening, and at full scale on
multi-core hardware the multi-process merge throughput is at least 1.5x
the single-process sharded configuration.  Below full scale (or on a
single core) only a no-catastrophic-overhead bound is asserted.
"""

from __future__ import annotations

import threading

import numpy as np
from conftest import FULL_SCALE, report, scaled

from repro.dataframe import DataFrame
from repro.eg.graph import ExperimentGraph
from repro.eg.updater import Updater
from repro.experiments.swarm import eg_fingerprint
from repro.graph.dag import WorkloadDAG
from repro.graph.operations import DataOperation
from repro.materialization import MaterializeAll
from repro.shard import (
    ProcessShardCoordinator,
    ShardedEGService,
    balanced_source_names,
)

N_SHARDS = 4
N_TENANTS = 8
ROUNDS = scaled(6, minimum=2)
PREFIX = scaled(8, minimum=3)  # shared per-group chain every tenant reuses
SUFFIX = 3  # per-(tenant, round) private branch
JOIN_EVERY = 4  # every JOIN_EVERY-th round ends in a cross-group join
FRAME_FLOATS = 128  # payload width: keeps the merge path CPU-bound

NAMES = balanced_source_names(N_SHARDS, N_SHARDS, prefix="mproc")


class Step(DataOperation):
    def __init__(self, tag):
        super().__init__("mproc-step", params={"tag": tag})

    def run(self, underlying_data):
        return underlying_data


class Join(DataOperation):
    def __init__(self, tag):
        super().__init__("mproc-join", params={"tag": tag})

    def run(self, underlying_data):
        return underlying_data[0]


def _frame(offset: float = 0.0) -> DataFrame:
    return DataFrame({"x": np.arange(float(FRAME_FLOATS)) + offset})


def tenant_workload(tenant: int, round_index: int) -> WorkloadDAG:
    """Group chain prefix + a private suffix; periodically a cross join."""
    group = tenant % N_SHARDS
    dag = WorkloadDAG()
    current = dag.add_source(NAMES[group], payload=_frame(group))
    for level in range(PREFIX):
        current = dag.add_operation([current], Step((group, level)))
        dag.vertex(current).record_result(_frame(level), compute_time=0.001 * (level + 1))
    for leaf in range(SUFFIX):
        current = dag.add_operation([current], Step((tenant, round_index, leaf)))
        dag.vertex(current).record_result(_frame(leaf), compute_time=0.002 * (leaf + 1))
    if round_index % JOIN_EVERY == JOIN_EVERY - 1:
        other_group = (group + 1) % N_SHARDS
        other = dag.add_source(NAMES[other_group], payload=_frame(other_group))
        current = dag.add_operation([current, other], Join((tenant, round_index)))
        dag.vertex(current).record_result(_frame(9.0), compute_time=0.01)
    dag.mark_terminal(current)
    return dag


def commit_stream(service):
    """Concurrent tenant threads commit every (tenant, round) workload.

    Returns the commit-order labels from the coordinator's log; the
    caller owns stopping the service.
    """
    sessions = [
        service.open_session(f"tenant-{tenant}") for tenant in range(N_TENANTS)
    ]
    errors: list[BaseException] = []

    def tenant_thread(tenant: int) -> None:
        try:
            for round_index in range(ROUNDS):
                service.commit(
                    sessions[tenant].session_id,
                    tenant_workload(tenant, round_index),
                    label=f"{tenant}:{round_index}",
                )
        except BaseException as error:  # noqa: BLE001 - surfaced after join
            errors.append(error)

    threads = [
        threading.Thread(target=tenant_thread, args=(tenant,))
        for tenant in range(N_TENANTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return [record.label for record in service.commit_log()]


def sequential_replay(labels) -> ExperimentGraph:
    eg = ExperimentGraph()
    updater = Updater(eg, MaterializeAll())
    for label in labels:
        tenant, round_index = (int(part) for part in label.split(":"))
        updater.update(tenant_workload(tenant, round_index))
    return eg


def test_multiproc_merge_throughput(benchmark):
    def run():
        multiproc = ProcessShardCoordinator(N_SHARDS, flight_recorder=False)
        try:
            mproc_labels = commit_stream(multiproc)
        finally:
            multiproc.stop()
        inproc = ShardedEGService(lambda _index: MaterializeAll(), N_SHARDS)
        try:
            inproc_labels = commit_stream(inproc)
        finally:
            inproc.stop()
        return multiproc, mproc_labels, inproc, inproc_labels

    multiproc, mproc_labels, inproc, inproc_labels = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    workloads = len(mproc_labels)
    assert len(inproc_labels) == workloads

    mproc_merge_seconds = [
        stats.merge_seconds_total for stats in multiproc.shard_stats()
    ]
    inproc_merge_seconds = [
        stats.merge_seconds_total for stats in inproc.shard_stats()
    ]
    mproc_critical = max(mproc_merge_seconds)
    inproc_critical = max(inproc_merge_seconds)
    mproc_throughput = workloads / mproc_critical
    inproc_throughput = workloads / inproc_critical
    ratio = mproc_throughput / inproc_throughput

    flat = multiproc.flatten()
    report(
        f"Multi-process merge: {N_SHARDS} worker processes x {N_TENANTS} "
        f"tenants, {workloads} workloads ({flat.num_vertices}-vertex EG, "
        f"{multiproc.partitioned.stub_count} stubs)",
        f"  in-process : {inproc_critical * 1e3:7.1f}ms merge critical path "
        f"({inproc_throughput:7.1f} workloads/s)",
        f"  {N_SHARDS} processes: {mproc_critical * 1e3:7.1f}ms merge critical path "
        f"({mproc_throughput:7.1f} workloads/s) -> {ratio:.1f}x",
        "  per-worker merge seconds: "
        + " ".join(f"{seconds * 1e3:.1f}ms" for seconds in mproc_merge_seconds),
    )

    # convergence gate: each run == a sequential replay in its own commit
    # order (the two runs interleave tenants differently, so last-seen
    # indices — and hence fingerprints — are only comparable per-run)
    replay = sequential_replay(mproc_labels)
    assert eg_fingerprint(flat) == eg_fingerprint(replay)
    assert flat.materialized_ids() == replay.materialized_ids()
    inproc_flat = inproc.flatten()
    assert eg_fingerprint(inproc_flat) == eg_fingerprint(
        sequential_replay(inproc_labels)
    )
    # order-independent structure matches across the two topologies
    assert flat.num_vertices == inproc_flat.num_vertices
    assert flat.materialized_ids() == inproc_flat.materialized_ids()
    assert multiproc.partitioned.stub_count == inproc.partitioned.stub_count
    assert multiproc.partitioned.stub_count > 0

    merged_pieces = [stats.merged_workloads for stats in multiproc.shard_stats()]
    assert all(pieces > 0 for pieces in merged_pieces)
    assert sum(merged_pieces) == sum(
        stats.merged_workloads for stats in inproc.shard_stats()
    )

    if FULL_SCALE:
        assert ratio >= 1.5
    else:
        # reduced scale / single core: only guard against catastrophic
        # per-worker overhead (serialization on the merge path etc.)
        assert ratio > 0.5

    benchmark.extra_info["mproc_throughput_ratio"] = round(ratio, 2)
    benchmark.extra_info["vc_exact_mproc_workloads"] = workloads
    benchmark.extra_info["vc_exact_mproc_eg_vertices"] = flat.num_vertices
    benchmark.extra_info["vc_exact_mproc_stub_edges"] = (
        multiproc.partitioned.stub_count
    )
    benchmark.extra_info["vc_exact_mproc_materialized"] = len(
        flat.materialized_ids()
    )
    benchmark.extra_info["vc_exact_mproc_merged_pieces"] = sum(merged_pieces)
