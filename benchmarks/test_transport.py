"""Binary transport — wire-byte accounting and the 64-client swarm.

Not a figure from the paper: the paper's system ships subgraphs between
clients and the EG server but does not specify a wire format.  This
benchmark gates the transport subsystem (``repro.transport``) on
machine-independent outcomes:

* the zero-copy columnar codec must shed >= 5x wire bytes against the
  JSON fallback on the steady-state exchange (the same source columns
  crossing the wire on every commit — binary ships bytes once, then
  dedup references), recorded as exact encoded-size counters;
* a swarm routed over TCP must converge to the *same* EG as a
  sequential replay, bit for bit;
* codec time must not show up in the top-5 self-time spans of a traced
  run — serialization is off the critical path.

Encoded sizes are pure functions of the (seeded) inputs, so the
``vc_exact_transport_*`` counters gate exactly regardless of host speed.
The swarm half scales: 64 clients at full scale, 16 under
``REPRO_SCALE < 0.75`` (counters are recorded for the 16-client shape
that CI runs).
"""

import numpy as np

from conftest import FULL_SCALE, report

from repro.dataframe import DataFrame
from repro.experiments.swarm import run_swarm
from repro.obs.profile import ProfileReport
from repro.obs.sinks import InMemorySink
from repro.obs.trace import Tracer, use_tracer
from repro.transport.codec import (
    BinaryWireCodec,
    ColumnLedger,
    JsonWireCodec,
    encoded_size,
)
from repro.transport.wire import encode_payload

#: fixed regardless of REPRO_SCALE — encoded sizes feed exact counters
ROWS = 4096
COLUMNS = 6
REPEAT_COMMITS = 4
CODEC_SPANS = {"transport.encode", "transport.decode"}


def _commit_message(seed: int = 97) -> dict:
    """A commit-shaped message tree: column-heavy, lineage ids attached."""
    rng = np.random.default_rng(seed)
    frame = DataFrame(
        {f"c{i}": rng.standard_normal(ROWS) for i in range(COLUMNS)}
    )
    return {
        "op": "commit",
        "session_id": "s1",
        "label": "bench",
        "workload": {"payload": encode_payload(frame)},
    }


def test_transport_wire_bytes(benchmark):
    message = _commit_message()

    def run():
        json_codec = JsonWireCodec()
        cold_binary = BinaryWireCodec()  # no ledger: every ship is full
        warm_binary = BinaryWireCodec(ColumnLedger())
        single_json = encoded_size(json_codec.encode(message))
        single_binary = encoded_size(cold_binary.encode(message))
        repeat_json = sum(
            encoded_size(json_codec.encode(message)) for _ in range(REPEAT_COMMITS)
        )
        repeat_binary = sum(
            encoded_size(warm_binary.encode(message)) for _ in range(REPEAT_COMMITS)
        )
        return single_json, single_binary, repeat_json, repeat_binary

    single_json, single_binary, repeat_json, repeat_binary = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    single_ratio = single_json / single_binary
    repeat_ratio = repeat_json / repeat_binary

    report(
        f"Transport codec: {COLUMNS}x{ROWS} float64 commit "
        f"json={single_json}B binary={single_binary}B ({single_ratio:.2f}x)",
        f"  {REPEAT_COMMITS} repeat commits: json={repeat_json}B "
        f"binary={repeat_binary}B ({repeat_ratio:.2f}x, dedup refs after ship #1)",
    )

    # cold binary already beats JSON; the dedup steady state is the gate
    assert single_ratio > 2.0
    assert repeat_ratio >= 5.0

    # encoded sizes are pure functions of the seeded input — exact gate
    benchmark.extra_info["vc_exact_transport_json_bytes"] = single_json
    benchmark.extra_info["vc_exact_transport_binary_bytes"] = single_binary
    benchmark.extra_info["vc_exact_transport_repeat_json_bytes"] = repeat_json
    benchmark.extra_info["vc_exact_transport_repeat_binary_bytes"] = repeat_binary


def test_transport_swarm(benchmark):
    clients = 64 if FULL_SCALE else 16

    def run():
        return run_swarm(
            clients=clients,
            rounds=2,
            op_seconds=0.01,
            replay=True,
            transport="tcp",
        )

    memory = InMemorySink()
    with use_tracer(Tracer(sinks=[memory])):
        result = benchmark.pedantic(run, rounds=1, iterations=1)

    wire = result.wire_stats
    profile = ProfileReport.from_spans(memory.spans, top_k=5)
    top5 = [entry.name for entry in profile.top(5)]
    codec_self_s = sum(
        entry.self_s
        for entry in ProfileReport.from_spans(memory.spans, top_k=64).entries
        if entry.name in CODEC_SPANS
    )

    report(
        f"Transport swarm: {result.clients} clients x {result.rounds} rounds "
        f"over tcp/{result.transport_codec} -> {result.workloads} commits "
        f"in {result.wall_seconds:.2f}s replay_identical={result.fingerprint_match}",
        f"  wire: {wire['bytes_in']:.0f}B in / {wire['bytes_out']:.0f}B out, "
        f"{wire['requests']:.0f} requests, dedup_refs={wire['dedup_refs']:.0f} "
        f"saved={wire['dedup_bytes_saved']:.0f}B shed={wire['shed']:.0f}",
        f"  profile top-5 by self time: {top5} "
        f"(codec self={codec_self_s * 1e3:.1f}ms)",
    )

    # the concurrent tcp run converges to the sequential replay's EG
    assert result.fingerprint_match is True
    assert result.stats.commits_total == clients * 2
    # column dedup engaged: repeat source ships became references
    assert wire["dedup_refs"] > 0
    # serialization is off the critical path
    assert not CODEC_SPANS & set(top5)

    # the EG the swarm converges to is deterministic for the 16-client
    # shape CI runs; at full scale (64 clients) the counters are simply
    # not recorded — check_regression.py notes them as missing
    if clients == 16:
        benchmark.extra_info["vc_exact_transport_eg_vertices"] = result.eg_vertices
        benchmark.extra_info["vc_exact_transport_eg_edges"] = result.eg_edges
        benchmark.extra_info["vc_exact_transport_eg_materialized"] = (
            result.eg_materialized
        )
