"""Figure 8 — effect of model quality on materialization (OpenML).

Paper shape: (a) in the model-benchmarking scenario, CO's reuse of the
gold-standard workload's artifacts beats re-running it from scratch
(paper: ~5x).  (b) with a one-artifact budget, larger alpha materializes
the gold-standard model sooner, so its cumulative-run-time delta to the
alpha=1 line plateaus earlier and lower.
"""

from conftest import FULL_SCALE, report, scaled

from repro.experiments import fig8a_model_benchmarking, fig8b_alpha_sweep
from repro.workloads.openml import sample_pipeline_specs


def test_fig8a_model_benchmarking(benchmark, credit_sources):
    specs = sample_pipeline_specs(scaled(300, minimum=30), seed=7)
    result = benchmark.pedantic(
        fig8a_model_benchmarking,
        args=(specs, credit_sources, 10_000_000),
        rounds=1,
        iterations=1,
    )

    report("", "== Figure 8a: model-benchmarking cumulative run-time (seconds) ==")
    marks = [len(specs) // 4, len(specs) // 2, 3 * len(specs) // 4, len(specs) - 1]
    report(f"{'workload':>9} " + " ".join(f"{'#' + str(m):>8}" for m in marks))
    report(f"{'CO':>9} " + " ".join(f"{result.cumulative_co[m]:>8.2f}" for m in marks))
    report(f"{'OML':>9} " + " ".join(f"{result.cumulative_oml[m]:>8.2f}" for m in marks))
    ratio = result.cumulative_oml[-1] / max(result.cumulative_co[-1], 1e-9)
    report(f"    paper: ~5x improvement; ours: {ratio:.1f}x")

    if FULL_SCALE:
        assert result.cumulative_co[-1] < result.cumulative_oml[-1]
        assert ratio > 1.5, "reusing the gold standard must clearly beat re-running it"


def test_fig8b_alpha_sweep(benchmark, credit_sources):
    specs = sample_pipeline_specs(scaled(150, minimum=20), seed=7)
    alphas = (0.0, 0.25, 0.5, 0.75, 1.0)
    result = benchmark.pedantic(
        fig8b_alpha_sweep,
        args=(specs, credit_sources, alphas),
        rounds=1,
        iterations=1,
    )

    report("", "== Figure 8b: cumulative run-time delta vs alpha=1 (seconds) ==")
    marks = [len(specs) // 4, len(specs) // 2, len(specs) - 1]
    report(f"{'alpha':>6} " + " ".join(f"{'#' + str(m):>8}" for m in marks))
    finals = {}
    for alpha in alphas:
        deltas = result.delta_vs_alpha1(alpha)
        finals[alpha] = deltas[-1]
        report(f"{alpha:>6.2f} " + " ".join(f"{deltas[m]:>8.3f}" for m in marks))

    assert finals[1.0] == 0.0
    if FULL_SCALE:
        # quality-aware materialization (alpha >= 0.5) must not lose to
        # quality-blind materialization (alpha = 0) in this scenario
        assert min(finals[0.75], finals[0.5]) <= finals[0.0] + 1e-6
