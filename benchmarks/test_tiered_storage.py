"""Tiered storage — bounding artifact RAM without giving up reuse.

Not a figure from the paper: the paper's store is a single in-memory tier.
This benchmark runs the same Kaggle workload sequence against the dedup
store (unbounded RAM) and the tiered store at a tight hot budget, and
reports what the RAM bound costs: demotions, cold hits, and the extra
modeled load time of serving reuse from disk.
"""

from conftest import report

from repro.experiments import make_optimizer, run_sequence, scaled_budget
from repro.workloads.kaggle import KAGGLE_WORKLOADS


def test_tiered_vs_dedup_store(benchmark, hc_sources, hc_total):
    scripts = [KAGGLE_WORKLOADS[i] for i in (1, 2, 4, 6)]
    budget = scaled_budget(16, hc_total)
    # hot tier sized to a fraction of the artifact volume so demotion is
    # exercised; the cold tier lives in a temp directory
    hot_budget = 0.1 * hc_total

    def run():
        results = {}
        for label, store in (("dedup", "dedup"), ("tiered", "tiered")):
            optimizer = make_optimizer(
                "SA",
                budget,
                reuse="LN",
                store=store,
                hot_budget_bytes=hot_budget if store == "tiered" else None,
            )
            results[label] = run_sequence(optimizer, scripts, hc_sources)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    dedup, tiered = results["dedup"], results["tiered"]
    stats = tiered.final_store_stats

    # machine-independent counters for the CI regression gate (see
    # benchmarks/check_regression.py): demotion traffic, modeled load
    # time, and the materialized volume must not silently blow up
    benchmark.extra_info["vc_tiered_demotions"] = stats["demotions"]
    benchmark.extra_info["vc_tiered_bytes_demoted"] = stats["bytes_demoted"]
    benchmark.extra_info["vc_tiered_load_time"] = sum(
        r.load_time for r in tiered.reports
    )
    benchmark.extra_info["vc_tiered_store_bytes"] = stats["total_bytes"]
    benchmark.extra_info["vc_dedup_store_bytes"] = dedup.final_store_stats["total_bytes"]

    report(
        "",
        "== Tiered storage: Kaggle W1/W2/W4/W6, hot tier at 10% of artifacts ==",
        f"  {'store':>7} {'total time':>11} {'store MB':>9} {'hot MB':>7} {'cold MB':>8}",
        f"  {'dedup':>7} {dedup.total_time:>10.2f}s "
        f"{dedup.final_store_stats['total_bytes'] / 1e6:>8.1f} "
        f"{dedup.final_store_stats['hot_bytes'] / 1e6:>7.1f} "
        f"{dedup.final_store_stats['cold_bytes'] / 1e6:>8.1f}",
        f"  {'tiered':>7} {tiered.total_time:>10.2f}s "
        f"{stats['total_bytes'] / 1e6:>8.1f} "
        f"{stats['hot_bytes'] / 1e6:>7.1f} "
        f"{stats['cold_bytes'] / 1e6:>8.1f}",
        f"  tiered tier traffic: {stats['demotions']} demotions "
        f"({stats['bytes_demoted'] / 1e6:.1f} MB), {stats['promotions']} promotions, "
        f"hit ratio {stats['hit_ratio']:.2f} "
        f"({stats['hot_hits']} hot / {stats['cold_hits']} cold hits)",
    )

    # the RAM bound must actually bind ...
    assert stats["demotions"] > 0
    assert stats["hot_bytes"] <= hot_budget
    # ... while materializing a near-identical artifact set (disk pricing
    # shifts a few utility-marginal picks, nothing more)
    assert stats["total_bytes"] > 0.9 * dedup.final_store_stats["total_bytes"]
    assert tiered.reports[-1].terminal_values
