"""Figure 4 — repeated executions of workloads 1-3 (CO vs HL vs KG).

Paper shape: run 1 is comparable across systems (CO/HL slightly ahead on
W2/W3 thanks to local pruning of redundant operations); run 2 drops by an
order of magnitude for CO and HL while KG stays flat.
"""

from conftest import FULL_SCALE, report

from repro.experiments import fig4_repeated_runs, scaled_budget


def test_fig4_repeated_executions(benchmark, hc_sources, hc_total):
    budget = scaled_budget(16, hc_total)
    result = benchmark.pedantic(
        fig4_repeated_runs, args=(hc_sources, budget), rounds=1, iterations=1
    )

    report("", "== Figure 4: repeated executions of Kaggle workloads 1-3 (seconds) ==")
    report(f"{'workload':>9} {'system':>7} {'run 1':>8} {'run 2':>8}")
    for workload_id, systems in result.times.items():
        for system, runs in systems.items():
            report(
                f"{'W' + str(workload_id):>9} {system:>7} "
                f"{runs[0]:>8.3f} {runs[1]:>8.3f}"
            )

    for workload_id, systems in result.times.items():
        # CO's second run must be at least an order of magnitude faster
        assert systems["CO"][1] < systems["CO"][0] / 10.0
        assert systems["HL"][1] < systems["HL"][0] / 10.0
        # KG gains nothing from repetition
        assert systems["KG"][1] > systems["CO"][1]
        if FULL_SCALE:
            assert systems["KG"][1] > 0.5 * systems["KG"][0]
