"""Concurrent EG service — the swarm under the benchmark harness.

Not a figure from the paper: the paper's system serves collaborating
users from one Experiment Graph but evaluates workloads sequentially.
This benchmark runs 8 concurrent tenants against the multi-tenant EG
service (snapshot-isolated planning, batched update merging) and gates
the machine-independent outcome: the final EG structure must be *exactly*
reproducible (``vc_exact_`` counters), the concurrent run must equal a
sequential commit-order replay bit-for-bit, and merges must actually
batch (mean batch size > 1).
"""

from conftest import report

from repro.experiments.swarm import run_swarm


def test_service_swarm(benchmark):
    def run():
        return run_swarm(clients=8, rounds=3, op_seconds=0.02, replay=True)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = result.stats

    report(
        f"Swarm: {result.clients} clients x {result.rounds} rounds "
        f"-> {result.workloads} commits in {result.wall_seconds:.2f}s "
        f"({result.throughput:.1f}/s)",
        f"  batches={stats.batches} mean_batch={stats.mean_batch_size:.2f} "
        f"max_batch={stats.max_batch_size}",
        f"  reuse_hits={stats.reuse_hits_total}/{stats.plans_total} "
        f"p50={stats.request_p50_s * 1e3:.1f}ms p99={stats.request_p99_s * 1e3:.1f}ms",
        f"  EG: {result.eg_vertices}v/{result.eg_edges}e "
        f"materialized={result.eg_materialized} store={result.store_bytes}B "
        f"replay_identical={result.fingerprint_match}",
    )

    # correctness of the concurrent path is part of the benchmark contract
    assert result.fingerprint_match is True
    assert stats.mean_batch_size > 1.0
    assert stats.reuse_hits_total > 0

    # exact machine-independent counters: the final EG of the batched-merge
    # path is fully deterministic, so the gate requires equality, not just
    # bounded growth (see benchmarks/check_regression.py)
    benchmark.extra_info["vc_exact_swarm_eg_vertices"] = result.eg_vertices
    benchmark.extra_info["vc_exact_swarm_eg_edges"] = result.eg_edges
    benchmark.extra_info["vc_exact_swarm_eg_materialized"] = result.eg_materialized
    benchmark.extra_info["vc_exact_swarm_store_bytes"] = result.store_bytes
    benchmark.extra_info["vc_exact_swarm_merged_workloads"] = stats.merged_workloads
