"""Figure 9a-c — reuse algorithms under HM and SA materialization.

Paper shape: ALL_C (no reuse) is flat-worst; LN and Helix reuse produce
the same plans and essentially the same run-time (speedup ~2.1x under SA);
ALL_M trails them where loading is dearer than recomputing.
"""

import pytest
from conftest import FULL_SCALE, report

from repro.experiments import fig9_reuse_comparison, scaled_budget


@pytest.fixture(scope="module")
def reuse_result(hc_sources, hc_total):
    budget = scaled_budget(16, hc_total)
    return fig9_reuse_comparison(hc_sources, budget)


def test_fig9ab_cumulative_runtime(benchmark, reuse_result):
    result = benchmark.pedantic(lambda: reuse_result, rounds=1, iterations=1)

    for materializer, title in (("HM", "9a: heuristics-based"), ("SA", "9b: storage-aware")):
        report("", f"== Figure {title} materialization: cumulative run-time (s) ==")
        report(f"{'reuse':>6} " + " ".join(f"{'W' + str(i):>7}" for i in range(1, 9)))
        for reuser in ("LN", "HL", "ALL_M", "ALL_C"):
            curve = result.cumulative[materializer][reuser]
            report(f"{reuser:>6} " + " ".join(f"{v:>7.2f}" for v in curve))

    if FULL_SCALE:
        for materializer in ("HM", "SA"):
            ln = result.cumulative[materializer]["LN"][-1]
            all_c = result.cumulative[materializer]["ALL_C"][-1]
            assert ln < all_c, "optimal reuse must beat recompute-everything"


def test_fig9c_speedup_vs_all_c(benchmark, reuse_result):
    result = benchmark.pedantic(lambda: reuse_result, rounds=1, iterations=1)

    report("", "== Figure 9c: speedup vs ALL_C (storage-aware materialization) ==")
    report(f"{'reuse':>6} " + " ".join(f"{'W' + str(i):>6}" for i in range(1, 9)))
    finals = {}
    for reuser in ("LN", "HL", "ALL_M"):
        curve = result.speedup_vs_all_c("SA", reuser)
        finals[reuser] = curve[-1]
        report(f"{reuser:>6} " + " ".join(f"{v:>6.2f}" for v in curve))
    report(
        f"    paper: LN and HL ~2.1x with LN slightly ahead; "
        f"ours: LN {finals['LN']:.2f}x, HL {finals['HL']:.2f}x, "
        f"ALL_M {finals['ALL_M']:.2f}x"
    )

    if FULL_SCALE:
        assert finals["LN"] > 1.2
        # LN and Helix find plans of the same cost on these workloads
        assert finals["LN"] == pytest.approx(finals["HL"], rel=0.25)
