"""Figure 10 — warmstarting OpenML workloads.

Paper shape: (a) CO without warmstarting is about level with OML (the
transformations are milliseconds; training dominates), while CO with
warmstarting cuts the cumulative run-time substantially (paper: ~3x).
(b) the cumulative accuracy delta of warmstarted runs vs OML is
non-negative and grows (paper: +0.014 average per workload).
"""

from conftest import FULL_SCALE, report, scaled

from repro.experiments import fig10_warmstarting
from repro.workloads.openml import sample_pipeline_specs


def test_fig10_warmstarting(benchmark, credit_sources):
    specs = sample_pipeline_specs(scaled(300, minimum=30), seed=7)
    result = benchmark.pedantic(
        fig10_warmstarting,
        args=(specs, credit_sources, 10_000_000),
        rounds=1,
        iterations=1,
    )

    n = len(specs)
    marks = [n // 4, n // 2, 3 * n // 4, n - 1]
    report("", "== Figure 10a: warmstarting cumulative run-time (seconds) ==")
    report(f"{'system':>7} " + " ".join(f"{'#' + str(m):>8}" for m in marks))
    report(f"{'OML':>7} " + " ".join(f"{result.cumulative_oml[m]:>8.2f}" for m in marks))
    report(
        f"{'CO-W':>7} "
        + " ".join(f"{result.cumulative_co_without[m]:>8.2f}" for m in marks)
    )
    report(
        f"{'CO+W':>7} "
        + " ".join(f"{result.cumulative_co_with[m]:>8.2f}" for m in marks)
    )
    speedup = result.cumulative_oml[-1] / max(result.cumulative_co_with[-1], 1e-9)
    report(
        f"    paper: CO+W ~3x faster than OML; ours: {speedup:.1f}x "
        f"({result.warmstarted_runs} runs warmstarted)"
    )

    report("", "== Figure 10b: cumulative accuracy delta (CO+W - OML) ==")
    report(" ".join(f"{result.cumulative_delta_accuracy[m]:>8.3f}" for m in marks))

    assert result.warmstarted_runs > 0
    if FULL_SCALE:
        assert result.cumulative_co_with[-1] < result.cumulative_oml[-1]
        assert result.cumulative_co_with[-1] <= result.cumulative_co_without[-1]
        # warmstarting must not hurt aggregate accuracy (paper: it helps)
        assert result.cumulative_delta_accuracy[-1] >= -0.5
