"""Adaptive policies vs static defaults on skewed traffic (perf gate).

Not a figure from the paper: this gates the ``repro.learn`` feedback loop.
Two deterministic simulations — no wall clock, no randomness beyond a
seeded generator — price the same workload under the static policy and
under the adaptive one:

* **eviction** — Zipf-head artifact traffic polluted by one-shot scans
  against a budgeted :class:`TieredArtifactStore`.  Pure LRU lets every
  scan burst displace the popular heads; the reuse-value scorer keeps
  them resident.  Each ``get`` is priced with the static
  :class:`TieredLoadCostModel` at the tier it is served from, so the
  totals are modeled load seconds, independent of machine speed.
* **batching** — a discrete-time merge-worker simulation with a known
  batch cost (``fixed + marginal * batch``) and two deterministic
  arrival-rate phases.  The static worker lingers a fixed 150ms; the
  :class:`AdaptiveBatchSizer` learns the fixed overhead and converges to
  the closed-form linger per phase.  Cost is total workload latency
  (queue wait + merge), in virtual seconds.

The gate: the adaptive policy must beat the static one by >= 1.3x on
each simulation (and therefore combined), while serving byte-identical
content.  All counts are exact-reproducible and held in the baseline.
"""

from __future__ import annotations

import numpy as np
from conftest import report

from repro.learn import AdaptiveBatchSizer, FeedbackCollector, ReuseValueScorer
from repro.obs.metrics import MetricsRegistry
from repro.storage import TieredArtifactStore
from repro.storage.costs import TieredLoadCostModel
from repro.dataframe import Column, DataFrame

# deliberately NOT scaled(): both simulations are tiny and their counters
# are vc_exact_, so the trace must be identical at every REPRO_SCALE
_ROWS = 256
_SLOT = _ROWS * 8  # one float64 column per artifact
_HEADS = 6
_ROUNDS = 40
_HOT_SLOTS = 16

_MERGE_FIXED = 0.02  # virtual seconds per merge batch
_MERGE_MARGINAL = 0.001  # virtual seconds per merged workload
_STATIC_LINGER = 0.15  # the service's default batch_linger_s


# ----------------------------------------------------------------------
# Part A: hot-tier eviction under scan pollution
# ----------------------------------------------------------------------
def _frame(column_id: str) -> DataFrame:
    return DataFrame([Column("x", np.zeros(_ROWS), column_id)])


def _eviction_trace(store: TieredArtifactStore) -> tuple[float, int]:
    """Replay the skewed trace; (modeled load seconds, cold hits)."""
    pricing = TieredLoadCostModel.default()
    cost = 0.0

    def priced_get(vertex: str) -> None:
        nonlocal cost
        cost += pricing.cost_for_tier(_SLOT, store.tier_of(vertex))
        store.get(vertex)

    for head in range(_HEADS):
        store.put(f"head{head}", _frame(f"head-col{head}"))
    rng = np.random.default_rng(11)
    scan_id = 0
    for _ in range(_ROUNDS):
        for _ in range(4):
            idx = min(int(rng.zipf(1.6)) - 1, _HEADS - 1)
            priced_get(f"head{idx}")
        for _ in range(4):
            vertex = f"scan{scan_id}"
            scan_id += 1
            store.put(vertex, _frame(f"scan-col{vertex}"))
            priced_get(vertex)
    return cost, store.stats.cold_hits


def run_eviction(tmp_path) -> dict[str, float]:
    static_store = TieredArtifactStore(
        hot_budget_bytes=_HOT_SLOTS * _SLOT, directory=tmp_path / "static"
    )
    static_cost, static_cold = _eviction_trace(static_store)

    adaptive_store = TieredArtifactStore(
        hot_budget_bytes=_HOT_SLOTS * _SLOT, directory=tmp_path / "adaptive"
    )
    collector = FeedbackCollector(registry=MetricsRegistry())
    adaptive_store.eviction_scorer = ReuseValueScorer(collector)
    adaptive_store.load_observer = collector.observe_cold_load
    adaptive_cost, adaptive_cold = _eviction_trace(adaptive_store)

    # policy only moves bytes between tiers; contents stay identical
    assert static_store.vertex_ids == adaptive_store.vertex_ids
    return {
        "static_cost": static_cost,
        "adaptive_cost": adaptive_cost,
        "static_cold": static_cold,
        "adaptive_cold": adaptive_cold,
    }


# ----------------------------------------------------------------------
# Part B: merge-batch linger under shifting arrival rates
# ----------------------------------------------------------------------
def _arrivals() -> list[float]:
    """Two deterministic phases: 20 workloads/s, then a 200/s burst."""
    slow = [index * 0.05 for index in range(400)]
    fast_start = slow[-1] + 0.05
    fast = [fast_start + index * 0.005 for index in range(800)]
    return slow + fast


def _simulate_worker(sizer: AdaptiveBatchSizer | None) -> tuple[float, int]:
    """Drain the arrival stream; (total latency virtual-seconds, batches).

    Latency of a workload is commit-to-publish: linger wait in the queue
    plus the merge it rides in.  The worker is busy during a merge, so a
    slow merge backs up the queue exactly like the real service.
    """
    arrivals = _arrivals()
    clock = 0.0
    index = 0
    total_latency = 0.0
    batches = 0
    while index < len(arrivals):
        if arrivals[index] > clock:
            clock = arrivals[index]  # idle until the next commit
        linger = sizer.current_linger() if sizer is not None else _STATIC_LINGER
        drain_at = clock + linger
        batch_end = index
        while batch_end < len(arrivals) and arrivals[batch_end] <= drain_at:
            batch_end += 1
        batch = arrivals[index:batch_end]
        merge_seconds = _MERGE_FIXED + _MERGE_MARGINAL * len(batch)
        done_at = drain_at + merge_seconds
        total_latency += sum(done_at - arrived for arrived in batch)
        batches += 1
        if sizer is not None:
            mean_wait = sum(drain_at - arrived for arrived in batch) / len(batch)
            sizer.observe_batch(len(batch), merge_seconds, mean_wait)
        clock = done_at
        index = batch_end
    return total_latency, batches


def run_batching() -> dict[str, float]:
    static_latency, static_batches = _simulate_worker(None)
    collector = FeedbackCollector(registry=MetricsRegistry())
    sizer = AdaptiveBatchSizer(
        collector,
        initial_linger_s=_STATIC_LINGER,  # start where the static policy sits
        registry=MetricsRegistry(),
    )
    adaptive_latency, adaptive_batches = _simulate_worker(sizer)
    return {
        "static_latency": static_latency,
        "adaptive_latency": adaptive_latency,
        "static_batches": static_batches,
        "adaptive_batches": adaptive_batches,
        "final_linger": sizer.current_linger(),
    }


def test_adaptive_policies(benchmark, tmp_path):
    def run():
        return run_eviction(tmp_path), run_batching()

    eviction, batching = benchmark.pedantic(run, rounds=1, iterations=1)

    eviction_gain = eviction["static_cost"] / eviction["adaptive_cost"]
    batching_gain = batching["static_latency"] / batching["adaptive_latency"]
    combined = (eviction["static_cost"] + batching["static_latency"]) / (
        eviction["adaptive_cost"] + batching["adaptive_latency"]
    )

    report(
        f"Adaptive policies vs static on skewed traffic "
        f"({_ROUNDS} rounds, {len(_arrivals())} commits)",
        f"  eviction: static {eviction['static_cost'] * 1e3:.1f}ms "
        f"({eviction['static_cold']} cold) vs adaptive "
        f"{eviction['adaptive_cost'] * 1e3:.1f}ms "
        f"({eviction['adaptive_cold']} cold) -> {eviction_gain:.2f}x",
        f"  batching: static {batching['static_latency']:.1f}s"
        f"/{batching['static_batches']} batches vs adaptive "
        f"{batching['adaptive_latency']:.1f}s/{batching['adaptive_batches']} "
        f"batches -> {batching_gain:.2f}x "
        f"(final linger {batching['final_linger'] * 1e3:.1f}ms)",
        f"  combined load+queue cost advantage: {combined:.2f}x",
    )

    # the issue's gate: adaptive must win by at least 1.3x on load+queue
    # cost — asserted per part, which implies it for the combined total
    assert eviction_gain >= 1.3
    assert batching_gain >= 1.3
    assert combined >= 1.3

    benchmark.extra_info["learn_eviction_gain"] = round(eviction_gain, 2)
    benchmark.extra_info["learn_batching_gain"] = round(batching_gain, 2)
    benchmark.extra_info["vc_exact_learn_static_cold_hits"] = eviction["static_cold"]
    benchmark.extra_info["vc_exact_learn_adaptive_cold_hits"] = (
        eviction["adaptive_cold"]
    )
    benchmark.extra_info["vc_exact_learn_static_batches"] = batching["static_batches"]
    benchmark.extra_info["vc_exact_learn_adaptive_batches"] = (
        batching["adaptive_batches"]
    )
    # modeled virtual costs: deterministic, but gated with tolerance so a
    # libm difference across platforms cannot trip the exact gate
    benchmark.extra_info["vc_learn_adaptive_load_cost"] = eviction["adaptive_cost"]
    benchmark.extra_info["vc_learn_adaptive_queue_cost"] = (
        batching["adaptive_latency"]
    )
