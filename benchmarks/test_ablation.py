"""Ablations of the design choices called out in DESIGN.md.

Not figures from the paper — these quantify *why* the design is the way it
is: (1) the backward pass of the reuse algorithm, (2) the load-cost model
(where the Experiment Graph lives), and (3) the alpha mix of the utility
function on the Kaggle workloads.
"""

import pytest
from conftest import report

from repro.eg.storage import LoadCostModel
from repro.experiments import make_optimizer, run_sequence, scaled_budget
from repro.reuse.linear import LinearReuse
from repro.workloads.kaggle import KAGGLE_WORKLOADS
from repro.workloads.synthetic_dag import (
    SyntheticDAGConfig,
    build_matching_eg,
    generate_synthetic_workload,
)


def test_ablation_backward_pass(benchmark):
    """Dropping the backward pass loads superfluous ancestors."""
    config = SyntheticDAGConfig(min_nodes=500, max_nodes=1000, materialized_ratio=0.5)

    def run():
        rows = []
        for seed in range(10):
            workload = generate_synthetic_workload(seed, config)
            eg = build_matching_eg(workload, seed, config)
            with_bp = LinearReuse(backward_pass=True).plan(workload, eg)
            without_bp = LinearReuse(backward_pass=False).plan(workload, eg)
            rows.append(
                (
                    len(with_bp.loads),
                    len(without_bp.loads),
                    with_bp.plan_cost(workload, eg, LoadCostModel.in_memory()),
                    without_bp.plan_cost(workload, eg, LoadCostModel.in_memory()),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    loads_with = sum(r[0] for r in rows)
    loads_without = sum(r[1] for r in rows)
    cost_with = sum(r[2] for r in rows)
    cost_without = sum(r[3] for r in rows)
    report(
        "",
        "== Ablation: reuse backward pass (10 synthetic workloads) ==",
        f"  loads: with pass {loads_with}, without {loads_without} "
        f"({loads_without - loads_with} superfluous)",
        f"  plan cost: with {cost_with:.1f}s, without {cost_without:.1f}s",
    )
    assert loads_without > loads_with
    assert cost_without >= cost_with


@pytest.mark.parametrize(
    "location,model",
    [
        ("memory", LoadCostModel.in_memory()),
        ("disk", LoadCostModel.on_disk()),
        ("remote", LoadCostModel.remote()),
    ],
)
def test_ablation_load_cost_regime(benchmark, hc_sources, hc_total, location, model):
    """Where the EG lives changes how much the planner chooses to load."""
    budget = scaled_budget(16, hc_total)
    scripts = [KAGGLE_WORKLOADS[i] for i in (1, 2, 4, 6)]

    def run():
        optimizer = make_optimizer("SA", budget, reuse="LN", load_cost_model=model)
        return run_sequence(optimizer, scripts, hc_sources)

    sequence = benchmark.pedantic(run, rounds=1, iterations=1)
    loads = sum(r.loaded_vertices for r in sequence.reports)
    report(
        f"== Ablation: EG on {location}: total {sequence.total_time:.2f}s, "
        f"{loads} artifacts loaded =="
    )
    assert sequence.reports[-1].terminal_values


def test_ablation_alpha_on_kaggle(benchmark, hc_sources, hc_total):
    """Alpha barely matters when the budget is loose (paper Section 7.3)."""
    budget = scaled_budget(16, hc_total)
    scripts = [KAGGLE_WORKLOADS[i] for i in (1, 4, 5)]

    def run():
        totals = {}
        for alpha in (0.0, 0.5, 1.0):
            optimizer = make_optimizer("SA", budget, reuse="LN", alpha=alpha)
            totals[alpha] = run_sequence(optimizer, scripts, hc_sources).total_time
        return totals

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "== Ablation: alpha on Kaggle W1/W4/W5 (loose budget) ==",
        "  " + ", ".join(f"alpha={a}: {t:.2f}s" for a, t in totals.items()),
    )
    assert all(t > 0 for t in totals.values())
