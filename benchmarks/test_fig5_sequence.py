"""Figure 5 — cumulative run-time of the 8 Kaggle workloads in sequence.

Paper shape: CO halves the cumulative run-time vs the KG baseline (~50%
saving); Helix improves over KG but by less than CO.
"""

from conftest import FULL_SCALE, report

from repro.experiments import fig5_sequence, scaled_budget


def test_fig5_workload_sequence(benchmark, hc_sources, hc_total):
    budget = scaled_budget(16, hc_total)
    result = benchmark.pedantic(
        fig5_sequence, args=(hc_sources, budget), rounds=1, iterations=1
    )

    # machine-independent virtual-cost counters: the CI regression gate
    # (benchmarks/check_regression.py) compares every ``vc_``-prefixed
    # entry against benchmarks/baseline.json, so plan quality cannot
    # silently regress even though wall times vary across runners
    co_sequence = result.sequences["CO"]
    benchmark.extra_info["vc_co_loaded_vertices"] = sum(
        r.loaded_vertices for r in co_sequence.reports
    )
    benchmark.extra_info["vc_co_executed_vertices"] = sum(
        r.executed_vertices for r in co_sequence.reports
    )
    benchmark.extra_info["vc_co_load_time"] = sum(
        r.load_time for r in co_sequence.reports
    )
    benchmark.extra_info["vc_co_store_bytes"] = co_sequence.physical_bytes[-1]

    report("", "== Figure 5: cumulative run-time of workloads 1-8 (seconds) ==")
    report(f"{'system':>7} " + " ".join(f"{'W' + str(i):>7}" for i in range(1, 9)))
    for system in ("CO", "HL", "KG"):
        curve = result.cumulative[system]
        report(f"{system:>7} " + " ".join(f"{v:>7.2f}" for v in curve))
    co, hl, kg = (result.cumulative[s][-1] for s in ("CO", "HL", "KG"))
    report(
        f"    paper: CO saves ~50% vs KG; ours: CO saves "
        f"{100 * (1 - co / kg):.0f}%, HL saves {100 * (1 - hl / kg):.0f}%"
    )

    if FULL_SCALE:
        assert co < kg, "CO must beat the no-optimizer baseline"
        assert co < hl, "CO must beat Helix over the full sequence"
        assert co < 0.75 * kg, "CO's saving should be substantial (paper: ~50%)"
