"""Figure 7 — run-time and speedup of the materialization algorithms.

Paper shape: (a) SA tracks the ALL upper bound even at small budgets; HM
lags SA at tight budgets; HL is worst because it exhausts its budget on
the workloads' initial artifacts.  (b) cumulative speedup vs KG: ALL ~2x,
SA close behind, HL only ~1.1-1.3x.
"""

from conftest import FULL_SCALE, report


def test_fig7a_total_runtime(benchmark, materialization_result):
    result = benchmark.pedantic(lambda: materialization_result, rounds=1, iterations=1)

    report("", "== Figure 7a: total run-time of workloads 1-8 (seconds) ==")
    report(f"{'strategy':>9} " + " ".join(f"{b:>6.0f}GB" for b in result.budgets_gb))
    for strategy in ("SA", "HM", "HL", "ALL"):
        times = [result.total_times[strategy][b] for b in result.budgets_gb]
        report(f"{strategy:>9} " + " ".join(f"{t:>8.2f}" for t in times))

    tight = result.budgets_gb[0]
    if FULL_SCALE:
        assert result.total_times["SA"][tight] < result.total_times["HL"][tight], (
            "SA must beat Helix materialization at tight budgets"
        )
        # SA with a small budget stays close to the ALL upper bound
        assert result.total_times["SA"][tight] < 1.5 * result.total_times["ALL"][tight]


def test_fig7b_cumulative_speedup(benchmark, materialization_result):
    result = benchmark.pedantic(lambda: materialization_result, rounds=1, iterations=1)

    series = {
        "SA-8": ("SA", 8.0),
        "SA-16": ("SA", 16.0),
        "HL-8": ("HL", 8.0),
        "HL-16": ("HL", 16.0),
        "ALL": ("ALL", 8.0),
    }
    report("", "== Figure 7b: cumulative speedup vs the KG baseline ==")
    report(f"{'series':>7} " + " ".join(f"{'W' + str(i):>6}" for i in range(1, 9)))
    curves = {}
    for label, (strategy, budget) in series.items():
        curves[label] = result.speedup_curve(strategy, budget)
        report(f"{label:>7} " + " ".join(f"{v:>6.2f}" for v in curves[label]))
    report(
        "    paper: ALL ~2.0x, SA-16 ~1.97x, SA-8 ~1.77x, HL <= 1.31x; "
        f"ours: ALL {curves['ALL'][-1]:.2f}x, SA-16 {curves['SA-16'][-1]:.2f}x, "
        f"HL-16 {curves['HL-16'][-1]:.2f}x"
    )

    if FULL_SCALE:
        assert curves["ALL"][-1] > 1.2, "materializing everything must pay off"
        assert curves["SA-16"][-1] > curves["HL-16"][-1], "SA must beat Helix"
        assert curves["SA-8"][-1] > curves["HL-8"][-1]
