"""Table 1 — the Kaggle workload inventory (N artifacts, total size)."""

from conftest import report

from repro.experiments import table1


def test_table1_workload_inventory(benchmark, hc_sources):
    rows = benchmark.pedantic(table1, args=(hc_sources,), rounds=1, iterations=1)

    report("", "== Table 1: Kaggle workloads (N = artifacts, S = artifact volume) ==")
    report(f"{'ID':>3} {'N':>5} {'S (MB)':>9}  Description")
    for row in rows:
        report(
            f"{row.workload_id:>3} {row.n_artifacts:>5} "
            f"{row.size_bytes / 1e6:>9.1f}  {row.description}"
        )
    total = sum(r.size_bytes for r in rows)
    report(f"    paper: N in [121, 406], S in [10, 83.5] GB, total ~130 GB")
    report(f"    ours (scaled): total over workloads = {total / 1e6:.1f} MB")

    # paper shape: W3 (and its derivative W7) dominate the artifact volume
    by_id = {r.workload_id: r for r in rows}
    assert by_id[3].size_bytes == max(r.size_bytes for r in rows[:3])
    assert all(r.n_artifacts > 0 for r in rows)
