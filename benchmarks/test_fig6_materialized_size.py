"""Figure 6 — real size of materialized artifacts under different budgets.

Paper shape: HM and HL never exceed their budget (no dedup), while SA's
column deduplication stores a *logical* volume several times the physical
budget — approaching the ALL line at moderate budgets.
"""

from conftest import report

from repro.experiments import scaled_budget


def test_fig6_real_materialized_size(benchmark, materialization_result, hc_total):
    result = benchmark.pedantic(lambda: materialization_result, rounds=1, iterations=1)

    report("", "== Figure 6: real (logical) size of materialized artifacts (MB) ==")
    for budget_gb in result.budgets_gb:
        budget = scaled_budget(budget_gb, hc_total)
        report(f"-- budget = {budget_gb:.0f} GB scaled -> {budget / 1e6:.1f} MB --")
        report(f"{'strategy':>9} " + " ".join(f"{'W' + str(i):>7}" for i in range(1, 9)))
        for strategy in ("SA", "HM", "HL", "ALL"):
            sizes = result.stored_sizes[strategy][budget_gb]
            report(f"{strategy:>9} " + " ".join(f"{s / 1e6:>7.1f}" for s in sizes))

    # shape assertions at the tightest budget
    tight = result.budgets_gb[0]
    budget_bytes = scaled_budget(tight, hc_total)
    sa_final = result.stored_sizes["SA"][tight][-1]
    hm_final = result.stored_sizes["HM"][tight][-1]
    hl_final = result.stored_sizes["HL"][tight][-1]
    all_final = result.stored_sizes["ALL"][tight][-1]
    assert hm_final <= budget_bytes * 1.001, "HM must stay within budget"
    assert hl_final <= budget_bytes * 1.001, "HL must stay within budget"
    assert sa_final > budget_bytes, "SA's dedup must exceed the physical budget"
    assert sa_final > hm_final, "SA stores more than HM at the same budget"
    assert all_final >= sa_final
    report(
        f"    paper: SA reaches up to 8x its budget; ours at {tight:.0f} GB scaled: "
        f"{sa_final / budget_bytes:.1f}x"
    )
