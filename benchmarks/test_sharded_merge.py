"""Sharded merge throughput vs the single-shard service (perf gate).

Not a figure from the paper: this gates the sharded Experiment Graph
service.  The same 16-tenant workload stream — four root-lineage groups
with shared per-group prefixes and periodic cross-group joins — is
committed twice through :class:`~repro.shard.ShardedEGService`, once at 4
shards and once at 1.  Merge work routes to the one shard owning each
piece's lineage, so the merge-critical path (the busiest shard's total
merge seconds) should shrink roughly linearly with the shard count.

The contract: both configurations (and a plain sequential
``Updater`` replay) end bit-identical after flattening, the stub registry
only exists in the sharded run, and at full scale the 4-shard aggregate
merge throughput is at least 2.5x the 1-shard configuration.
"""

from __future__ import annotations

import numpy as np
from conftest import FULL_SCALE, report, scaled

from repro.dataframe import DataFrame
from repro.eg.graph import ExperimentGraph
from repro.eg.updater import Updater
from repro.experiments.swarm import eg_fingerprint
from repro.graph.dag import WorkloadDAG
from repro.graph.operations import DataOperation
from repro.materialization import MaterializeAll
from repro.shard import ShardedEGService, balanced_source_names

N_SHARDS = 4
N_TENANTS = 16
ROUNDS = scaled(8, minimum=3)
PREFIX = scaled(12, minimum=4)  # shared per-group chain every tenant reuses
SUFFIX = 4  # per-(tenant, round) private branch
JOIN_EVERY = 4  # every JOIN_EVERY-th round ends in a cross-group join

NAMES = balanced_source_names(N_SHARDS, N_SHARDS, prefix="bench")


class Step(DataOperation):
    def __init__(self, tag):
        super().__init__("shard-step", params={"tag": tag})

    def run(self, underlying_data):
        return underlying_data


class Join(DataOperation):
    def __init__(self, tag):
        super().__init__("shard-join", params={"tag": tag})

    def run(self, underlying_data):
        return underlying_data[0]


def _frame(offset: float = 0.0) -> DataFrame:
    return DataFrame({"x": np.arange(4.0) + offset})


def tenant_workload(tenant: int, round_index: int) -> WorkloadDAG:
    """Group chain prefix + a private suffix; periodically a cross join."""
    group = tenant % N_SHARDS
    dag = WorkloadDAG()
    current = dag.add_source(NAMES[group], payload=_frame(group))
    for level in range(PREFIX):
        current = dag.add_operation([current], Step((group, level)))
        dag.vertex(current).record_result(_frame(level), compute_time=0.001 * (level + 1))
    for leaf in range(SUFFIX):
        current = dag.add_operation([current], Step((tenant, round_index, leaf)))
        dag.vertex(current).record_result(_frame(leaf), compute_time=0.002 * (leaf + 1))
    if round_index % JOIN_EVERY == JOIN_EVERY - 1:
        other_group = (group + 1) % N_SHARDS
        other = dag.add_source(NAMES[other_group], payload=_frame(other_group))
        current = dag.add_operation([current, other], Join((tenant, round_index)))
        dag.vertex(current).record_result(_frame(9.0), compute_time=0.01)
    dag.mark_terminal(current)
    return dag


def commit_stream(n_shards: int):
    """Commit every (round, tenant) workload; returns (service, labels)."""
    service = ShardedEGService(lambda _index: MaterializeAll(), n_shards)
    sessions = [
        service.open_session(f"tenant-{tenant}") for tenant in range(N_TENANTS)
    ]
    labels = []
    for round_index in range(ROUNDS):
        for tenant in range(N_TENANTS):
            label = f"{tenant}:{round_index}"
            service.commit(
                sessions[tenant].session_id,
                tenant_workload(tenant, round_index),
                label=label,
            )
            labels.append(label)
    service.stop()
    return service, labels


def sequential_replay(labels) -> ExperimentGraph:
    eg = ExperimentGraph()
    updater = Updater(eg, MaterializeAll())
    for label in labels:
        tenant, round_index = (int(part) for part in label.split(":"))
        updater.update(tenant_workload(tenant, round_index))
    return eg


def test_sharded_merge_throughput(benchmark):
    def run():
        sharded, labels = commit_stream(N_SHARDS)
        single, _ = commit_stream(1)
        return sharded, single, labels

    sharded, single, labels = benchmark.pedantic(run, rounds=1, iterations=1)
    workloads = len(labels)

    shard_merge_seconds = [
        stats.merge_seconds_total for stats in sharded.shard_stats()
    ]
    critical_path = max(shard_merge_seconds)
    single_seconds = single.shard_stats()[0].merge_seconds_total
    sharded_throughput = workloads / critical_path
    single_throughput = workloads / single_seconds
    ratio = sharded_throughput / single_throughput

    flat = sharded.flatten()
    report(
        f"Sharded merge: {N_SHARDS} shards x {N_TENANTS} tenants, "
        f"{workloads} workloads ({flat.num_vertices}-vertex EG, "
        f"{sharded.partitioned.stub_count} stubs)",
        f"  1 shard : {single_seconds * 1e3:7.1f}ms merge critical path "
        f"({single_throughput:7.1f} workloads/s)",
        f"  {N_SHARDS} shards: {critical_path * 1e3:7.1f}ms merge critical path "
        f"({sharded_throughput:7.1f} workloads/s) -> {ratio:.1f}x",
        "  per-shard merge seconds: "
        + " ".join(f"{seconds * 1e3:.1f}ms" for seconds in shard_merge_seconds),
    )

    # convergence gate: sharded == single-shard == plain sequential replay
    replay = sequential_replay(labels)
    assert eg_fingerprint(flat) == eg_fingerprint(replay)
    assert eg_fingerprint(single.flatten()) == eg_fingerprint(replay)
    assert flat.materialized_ids() == replay.materialized_ids()
    assert sharded.partitioned.recreation_costs() == replay.recreation_costs()

    # partitioning sanity: stubs only exist in the sharded run, load spread
    assert sharded.partitioned.stub_count > 0
    assert single.partitioned.stub_count == 0
    merged_pieces = [
        stats.merged_workloads for stats in sharded.shard_stats()
    ]
    assert all(pieces > 0 for pieces in merged_pieces)

    if FULL_SCALE:
        assert ratio >= 2.5
    else:
        assert ratio > 1.0

    benchmark.extra_info["shard_throughput_ratio"] = round(ratio, 2)
    benchmark.extra_info["vc_exact_shard_workloads"] = workloads
    benchmark.extra_info["vc_exact_shard_eg_vertices"] = flat.num_vertices
    benchmark.extra_info["vc_exact_shard_stub_edges"] = sharded.partitioned.stub_count
    benchmark.extra_info["vc_exact_shard_materialized"] = len(
        flat.materialized_ids()
    )
    benchmark.extra_info["vc_exact_shard_merged_pieces"] = sum(merged_pieces)
