#!/usr/bin/env python3
"""Benchmark regression gate over machine-independent counters.

``pytest --benchmark-json=bench.json`` records, for every benchmark, the
``vc_``-prefixed entries of ``benchmark.extra_info`` — virtual-cost
counters (loaded/executed vertices, modeled load seconds, store bytes,
demotion traffic) that do not depend on the speed of the machine running
the suite.  This script compares those counters against the committed
``benchmarks/baseline.json`` and exits non-zero when any counter grew by
more than the tolerance (default 25%), so a PR cannot silently regress
plan quality or storage behaviour behind noisy wall-clock numbers.

Counters whose name starts with ``vc_exact_`` are *fully deterministic*
(e.g. the final EG structure the concurrent service converges to) and
must match the baseline exactly — any difference, growth or shrinkage,
fails the gate.

Usage::

    python benchmarks/check_regression.py bench.json                # gate
    python benchmarks/check_regression.py bench.json --update       # re-baseline
    python benchmarks/check_regression.py bench.json --tolerance 0.1

Counters present only in the baseline (a benchmark was removed) are
reported but do not fail the gate — except ``vc_exact_`` counters, whose
disappearance means a convergence check silently stopped running and
therefore fails.  Counters present only in the new run (a benchmark was
added) are accepted and should be committed into the baseline with
``--update``.

Every failing counter is reported in one run (the gate never stops at
the first regression), and a failing run also prints the full baseline
-> current diff so the whole picture is available without a rerun.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "baseline.json"
#: integer counters sitting near zero (e.g. 2 -> 3 demotions) must not
#: trip the relative threshold, so each counter gets an absolute slack of
#: up to this many units — capped at half the reference value so small
#: float counters (modeled seconds) still gate at the relative tolerance
ABSOLUTE_SLACK = 2.0


def _slack(reference: float) -> float:
    return min(ABSOLUTE_SLACK, 0.5 * reference) if reference > 0 else ABSOLUTE_SLACK


def extract_counters(document: dict) -> dict[str, float]:
    """``{benchmark_name.counter: value}`` for every vc_ counter."""
    counters: dict[str, float] = {}
    for entry in document.get("benchmarks", []):
        name = entry.get("name", "?")
        for key, value in (entry.get("extra_info") or {}).items():
            if key.startswith("vc_") and isinstance(value, (int, float)):
                counters[f"{name}.{key}"] = float(value)
    return counters


def compare(
    baseline: dict[str, float], current: dict[str, float], tolerance: float
) -> list[str]:
    """Human-readable regression lines; empty means the gate passes.

    Collects EVERY failing counter instead of stopping at the first, so
    one CI run shows the complete set of regressions.
    """
    regressions = []
    for key in sorted(baseline):
        if key not in current:
            if ".vc_exact_" in key:
                regressions.append(
                    f"  {key}: {baseline[key]:g} -> MISSING "
                    "(exact counter dropped from the run)"
                )
            else:
                print(f"  note: {key} missing from the new run (benchmark removed?)")
            continue
        reference, value = baseline[key], current[key]
        if ".vc_exact_" in key:
            if value != reference:
                regressions.append(
                    f"  {key}: {reference:g} -> {value:g} (exact counter must match)"
                )
            continue
        limit = reference * (1.0 + tolerance) + _slack(reference)
        if value > limit:
            grown = (value / reference - 1.0) * 100 if reference else float("inf")
            regressions.append(
                f"  {key}: {reference:g} -> {value:g} (+{grown:.1f}%, "
                f"limit +{tolerance * 100:.0f}%)"
            )
    for key in sorted(set(current) - set(baseline)):
        print(f"  note: new counter {key} = {current[key]:g} (not in baseline)")
    return regressions


def full_diff(baseline: dict[str, float], current: dict[str, float]) -> list[str]:
    """Every counter as ``key: baseline -> current``, for failing runs."""
    lines = []
    for key in sorted(set(baseline) | set(current)):
        reference = baseline.get(key)
        value = current.get(key)
        if reference is None:
            lines.append(f"  {key}: (new) -> {value:g}")
        elif value is None:
            lines.append(f"  {key}: {reference:g} -> (missing)")
        else:
            marker = "" if value == reference else f" ({value - reference:+g})"
            lines.append(f"  {key}: {reference:g} -> {value:g}{marker}")
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", type=Path, help="pytest --benchmark-json output")
    parser.add_argument(
        "--baseline", type=Path, default=BASELINE_PATH, help="committed reference"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative growth per counter (0.25 = +25%%)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from this run instead of gating",
    )
    args = parser.parse_args(argv)

    current = extract_counters(json.loads(args.bench_json.read_text()))
    if not current:
        print("error: no vc_ counters found in", args.bench_json)
        return 2

    if args.update:
        args.baseline.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
        print(f"baseline updated: {len(current)} counters -> {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(f"error: baseline {args.baseline} does not exist (run with --update)")
        return 2
    baseline = json.loads(args.baseline.read_text())

    print(f"comparing {len(current)} counters against {args.baseline}")
    regressions = compare(baseline, current, args.tolerance)
    if regressions:
        print(f"REGRESSIONS ({len(regressions)} counter(s) failed the gate):")
        for line in regressions:
            print(line)
        print("full diff (baseline -> current):")
        for line in full_diff(baseline, current):
            print(line)
        return 1
    print("ok: no counter regressed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
