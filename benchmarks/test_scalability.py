"""Scalability of the server as the Experiment Graph grows.

Not a paper figure — this quantifies the claim behind Sections 5.2/6.1:
the optimizer must keep up with the high rate of incoming workloads in a
collaborative environment.  We stream OpenML pipelines through one EG and
track the *server-side* overhead (reuse planning + updater/materializer)
per workload as the graph grows.
"""

import time

from conftest import report, scaled

from repro.experiments import make_optimizer
from repro.workloads.openml import (
    generate_credit_g,
    make_pipeline_script,
    sample_pipeline_specs,
)


def test_server_overhead_vs_eg_size(benchmark):
    sources = generate_credit_g(n_rows=300, seed=5)
    n_pipelines = scaled(240, minimum=40)
    specs = sample_pipeline_specs(n_pipelines, seed=13)

    def run():
        optimizer = make_optimizer("SA", 50_000_000)
        samples = []  # (eg_vertices, server_seconds)
        for spec in specs:
            script = make_pipeline_script(spec)
            started = time.perf_counter()
            report_one = optimizer.run_script(script, sources)
            wall = time.perf_counter() - started
            server_seconds = wall - report_one.compute_time
            samples.append((optimizer.eg.num_vertices, server_seconds))
        return samples

    samples = benchmark.pedantic(run, rounds=1, iterations=1)
    quarter = len(samples) // 4
    first = sum(s for _v, s in samples[:quarter]) / quarter
    last = sum(s for _v, s in samples[-quarter:]) / quarter
    report(
        "",
        "== Scalability: server overhead per workload as the EG grows ==",
        f"  EG grows {samples[0][0]} -> {samples[-1][0]} vertices over "
        f"{len(samples)} workloads",
        f"  mean server overhead: first quartile {first * 1000:.1f} ms, "
        f"last quartile {last * 1000:.1f} ms ({last / max(first, 1e-9):.1f}x growth)",
    )

    assert samples[-1][0] > samples[0][0]
    # overhead may grow with the EG, but must stay interactive
    assert last < 0.5, "per-workload server overhead must stay well below 500 ms"
