"""Incremental merge path vs full-copy/full-recompute (perf gate).

Not a figure from the paper: this gates the service's incremental merge
machinery.  Two identical worlds replay the same merge cycles — a seeded
~5k-vertex EG receiving batches of 8 small extension workloads — one
through the fast path (installed ``UtilityIndex`` + copy-on-write
``publish(dirty_vertices=...)``), one through the historical slow path
(full ``recreation_costs``/``potentials`` recompute + full snapshot
copy).  The contract: both worlds end bit-identical (``eg_fingerprint``),
the dirty set stays proportional to the batch rather than the EG, and the
fast path is at least 5x quicker per merge cycle at full scale.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import FULL_SCALE, report, scaled

from repro.dataframe import DataFrame
from repro.eg.graph import ExperimentGraph
from repro.eg.updater import Updater
from repro.eg.utility_index import UtilityIndex
from repro.experiments.swarm import eg_fingerprint
from repro.graph.artifacts import ArtifactMeta, ArtifactType
from repro.graph.dag import WorkloadDAG
from repro.graph.operations import DataOperation
from repro.materialization import HeuristicMaterializer
from repro.service.versioned import VersionedExperimentGraph

N_CHAINS = scaled(50, minimum=8)
DEPTH = scaled(100, minimum=12)
BATCH_SIZE = 8
PREFIX = 10  # extension workloads branch off after this many chain steps
TIMED_ROUNDS = 3


class Step(DataOperation):
    def __init__(self, tag: str):
        super().__init__("inc-step", params={"tag": tag})

    def run(self, underlying_data):
        return underlying_data


def _frame() -> DataFrame:
    return DataFrame({"x": np.arange(4.0)})


def _mark_model(vertex, quality: float) -> None:
    vertex.meta = ArtifactMeta(
        artifact_type=ArtifactType.MODEL, quality=quality, model_type="Fake"
    )
    vertex.artifact_type = ArtifactType.MODEL


def seed_workload(chain: int) -> WorkloadDAG:
    """One deep chain: source -> DEPTH steps, a scored model at the tip."""
    dag = WorkloadDAG()
    current = dag.add_source(f"chain{chain}", payload=_frame())
    for level in range(DEPTH):
        current = dag.add_operation([current], Step(f"{chain}:{level}"))
        dag.vertex(current).record_result(_frame(), compute_time=0.001 * (level + 1))
    _mark_model(dag.vertex(current), quality=0.5 + chain / (4 * N_CHAINS))
    dag.mark_terminal(current)
    return dag


def extension_workload(chain: int, round_index: int) -> WorkloadDAG:
    """A small follow-up: reuse the chain's first PREFIX steps, branch off.

    Compute times of the reused prefix match the seed exactly, so the
    merge dirties only the prefix bookkeeping (frequency/last_seen) plus
    the handful of genuinely new branch vertices — never the whole EG.
    """
    dag = WorkloadDAG()
    current = dag.add_source(f"chain{chain}", payload=_frame())
    for level in range(PREFIX):
        current = dag.add_operation([current], Step(f"{chain}:{level}"))
        dag.vertex(current).record_result(_frame(), compute_time=0.001 * (level + 1))
    for leaf in range(3):
        current = dag.add_operation([current], Step(f"b{round_index}:{chain}:{leaf}"))
        dag.vertex(current).record_result(_frame(), compute_time=0.002 * (leaf + 1))
    _mark_model(dag.vertex(current), quality=0.6 + (chain + round_index) / (8 * N_CHAINS))
    dag.mark_terminal(current)
    return dag


class World:
    """One EG + updater + versioned view, on either merge path."""

    def __init__(self, incremental: bool):
        self.incremental = incremental
        self.eg = ExperimentGraph()
        self.index = UtilityIndex.install(self.eg) if incremental else None
        self.updater = Updater(self.eg, HeuristicMaterializer(budget_bytes=1e9))
        self.updater.update_batch([seed_workload(chain) for chain in range(N_CHAINS)])
        self.versioned = VersionedExperimentGraph(eg=self.eg)
        self.updater.clear_dirty()
        self.last_dirty = 0

    def merge_cycle(self, batch: list[WorkloadDAG]) -> float:
        """One merge-worker drain: union + materialize + publish.  Seconds."""
        started = time.perf_counter()
        self.updater.update_batch(batch, evict=self.versioned.defer_unmaterialize)
        if self.incremental:
            dirty = self.updater.pending_dirty
            self.last_dirty = len(dirty)
            self.versioned.publish(dirty_vertices=set(dirty))
        else:
            self.last_dirty = len(self.updater.pending_dirty)
            self.versioned.publish()
        elapsed = time.perf_counter() - started
        self.updater.clear_dirty()
        self.versioned.flush_deferred()
        return elapsed


def test_incremental_merge(benchmark):
    def run():
        fast = World(incremental=True)
        slow = World(incremental=False)
        batches = [
            [extension_workload(chain, round_index) for chain in range(BATCH_SIZE)]
            for round_index in range(TIMED_ROUNDS + 1)
        ]
        # warm both worlds with an untimed round, then time the rest
        fast.merge_cycle(batches[0])
        slow.merge_cycle(batches[0])
        fast_seconds = sum(fast.merge_cycle(batch) for batch in batches[1:])
        slow_seconds = sum(slow.merge_cycle(batch) for batch in batches[1:])
        return fast, slow, fast_seconds, slow_seconds

    fast, slow, fast_seconds, slow_seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    speedup = slow_seconds / fast_seconds if fast_seconds > 0 else float("inf")
    total = fast.eg.num_vertices
    per_cycle_fast = fast_seconds / TIMED_ROUNDS
    per_cycle_slow = slow_seconds / TIMED_ROUNDS

    report(
        f"Incremental merge: batch of {BATCH_SIZE} against a {total}-vertex EG",
        f"  fast path (COW + utility index): {per_cycle_fast * 1e3:.1f}ms/cycle",
        f"  slow path (full copy+recompute): {per_cycle_slow * 1e3:.1f}ms/cycle "
        f"-> {speedup:.1f}x",
        f"  dirty={fast.last_dirty}/{total} vertices "
        f"cost_dirty={fast.index.last_cost_dirty} "
        f"pot_dirty={fast.index.last_potential_dirty}",
    )

    # both paths must produce bit-identical EGs and snapshots
    assert eg_fingerprint(fast.eg) == eg_fingerprint(slow.eg)
    with fast.versioned.acquire() as lease:
        assert eg_fingerprint(lease.eg) == eg_fingerprint(fast.eg)
    fast.index.verify()

    # the dirty set is proportional to the batch, not the graph
    assert fast.last_dirty * 4 < total
    assert fast.index.last_cost_dirty < fast.last_dirty

    if FULL_SCALE:
        assert speedup >= 5.0
    else:
        assert speedup > 1.0

    benchmark.extra_info["incmerge_speedup"] = round(speedup, 2)
    benchmark.extra_info["vc_exact_incmerge_eg_vertices"] = total
    benchmark.extra_info["vc_exact_incmerge_batch_dirty"] = fast.last_dirty
    benchmark.extra_info["vc_exact_incmerge_cost_dirty"] = fast.index.last_cost_dirty
    benchmark.extra_info["vc_exact_incmerge_pot_dirty"] = (
        fast.index.last_potential_dirty
    )
