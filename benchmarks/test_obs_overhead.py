"""Observability overhead gate: tracing must be free when disabled.

The default tracer is a no-op (``repro.obs.trace.NoopTracer``); every
instrumented hot path pays only one shared-singleton context-manager
entry per span.  Rather than an A/B wall-clock diff (noisy at benchmark
scale), the gate is computed from first principles:

1. run the swarm under the default no-op tracer and take its wall time,
2. run the same swarm under an enabled in-memory tracer to count how
   many spans the run actually emits,
3. microbenchmark the no-op span path to get a per-span cost,

then assert ``spans x per_span_cost`` — the total instrumentation cost
the no-op run paid — stays under 3% of the measured wall time.

``test_obs_recorder_overhead`` gates the *always-on* plane the same
way: the per-span cost of a tracer whose only sink is a
:class:`FlightRecorder` (measured on root spans, so every iteration
pays the full buffer-classify-finalize path) projected over the span
volume of a recorder-on swarm must stay under 5% of its wall time.
"""

import time

from conftest import report

from repro.experiments.swarm import run_swarm
from repro.obs.plane import FlightRecorder
from repro.obs.sinks import InMemorySink
from repro.obs.trace import NoopTracer, Tracer, use_tracer

CLIENTS = 4
ROUNDS = 3
OP_SECONDS = 0.01

MICROBENCH_ITERS = 20_000
OVERHEAD_BUDGET = 0.03
RECORDER_ITERS = 5_000
RECORDER_BUDGET = 0.05


def _noop_span_cost() -> float:
    """Per-span seconds of the disabled path (context-manager + lookup)."""
    tracer = NoopTracer()
    begin = time.perf_counter()
    for _ in range(MICROBENCH_ITERS):
        with tracer.span("bench.noop", vertex="abcdef012345", cache_hit=False):
            pass
    return (time.perf_counter() - begin) / MICROBENCH_ITERS


def _recorded_span_cost() -> float:
    """Per-span seconds with a flight recorder attached.

    Every iteration finishes a *root* span, so this upper-bounds the
    recorder's hot path: buffer upsert plus the tail decision and
    finalize that only roots trigger.
    """
    recorder = FlightRecorder(slow_threshold_s=1e9, head_sample_every=0)
    tracer = Tracer(sinks=[recorder], keep_last=1)
    begin = time.perf_counter()
    for _ in range(RECORDER_ITERS):
        with tracer.span("bench.recorded", vertex="abcdef012345", cache_hit=False):
            pass
    return (time.perf_counter() - begin) / RECORDER_ITERS


def test_obs_overhead(benchmark):
    def run():
        # recorder off: this leg measures the dark default-tracer path
        return run_swarm(
            clients=CLIENTS,
            rounds=ROUNDS,
            op_seconds=OP_SECONDS,
            replay=False,
            flight_recorder=False,
        )

    # 1) wall time under the default no-op tracer
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    wall = result.wall_seconds

    # 2) span census under an enabled tracer
    memory = InMemorySink()
    with use_tracer(Tracer(sinks=[memory])):
        traced = run()
    spans = memory.spans
    by_name: dict[str, int] = {}
    for span in spans:
        by_name[span.name] = by_name.get(span.name, 0) + 1

    # 3) projected cost the no-op run paid for those span sites
    per_span = _noop_span_cost()
    projected = len(spans) * per_span
    ratio = projected / wall

    report(
        f"Obs overhead: {len(spans)} spans x {per_span * 1e9:.0f}ns noop "
        f"= {projected * 1e3:.3f}ms over {wall:.2f}s wall "
        f"({ratio * 100:.3f}% <= {OVERHEAD_BUDGET * 100:.0f}%)",
        f"  spans by name: {dict(sorted(by_name.items()))}",
    )

    assert result.stats.commits_total == CLIENTS * ROUNDS
    assert ratio < OVERHEAD_BUDGET

    # the traced run must cover every instrumented subsystem
    assert by_name["client.workload"] == CLIENTS * ROUNDS
    assert by_name["service.commit"] == CLIENTS * ROUNDS
    assert {"reuse.plan", "executor.execute", "service.merge_batch"} <= set(by_name)

    # machine-independent counters for check_regression.py: span volume is
    # a proxy for instrumentation creep on the hot paths
    benchmark.extra_info["vc_exact_obs_workload_spans"] = by_name["client.workload"]
    benchmark.extra_info["vc_exact_obs_commit_spans"] = by_name["service.commit"]
    benchmark.extra_info["vc_obs_spans_total"] = len(spans)
    assert traced.stats.commits_total == CLIENTS * ROUNDS


def test_obs_recorder_overhead(benchmark):
    """The always-on recorder must stay under 5% projected overhead."""
    recorder = FlightRecorder(
        slow_threshold_s=0.0, head_sample_every=0, keep_last=1024, max_traces=1024
    )

    def run():
        return run_swarm(
            clients=CLIENTS,
            rounds=ROUNDS,
            op_seconds=OP_SECONDS,
            replay=False,
            flight_recorder=recorder,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    wall = result.wall_seconds
    stats = result.recorder_stats  # snapshot taken before service.stop()

    per_span = _recorded_span_cost()
    projected = stats["spans_seen"] * per_span
    ratio = projected / wall

    report(
        f"Recorder overhead: {stats['spans_seen']} spans x "
        f"{per_span * 1e9:.0f}ns recorded = {projected * 1e3:.3f}ms over "
        f"{wall:.2f}s wall ({ratio * 100:.3f}% <= {RECORDER_BUDGET * 100:.0f}%)",
        f"  decisions: {stats['decisions']}",
    )

    assert result.stats.commits_total == CLIENTS * ROUNDS
    assert ratio < RECORDER_BUDGET

    # at slow_threshold 0 the tail keeps everything: nothing may drop,
    # and every client workload trace must be retained by name
    assert stats["decisions"]["dropped"] == 0
    workload_traces = [
        t for t in recorder.kept_traces(limit=None) if t["root"] == "client.workload"
    ]
    assert len(workload_traces) == CLIENTS * ROUNDS

    benchmark.extra_info["vc_exact_obs_recorder_workload_traces"] = len(
        workload_traces
    )
    benchmark.extra_info["vc_exact_obs_recorder_dropped"] = stats["decisions"][
        "dropped"
    ]
    benchmark.extra_info["vc_obs_recorder_spans_seen"] = stats["spans_seen"]
