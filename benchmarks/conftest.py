"""Shared fixtures and reporting helpers for the benchmark suite.

Each benchmark regenerates one table or figure of the paper and prints the
rows/series the paper reports.  Scale knobs (data size, pipeline counts)
can be adjusted with the ``REPRO_SCALE`` environment variable (default 1.0;
e.g. ``REPRO_SCALE=0.25 pytest benchmarks/`` for a quick pass).

Output is written to the real stdout so it survives pytest's capture and
shows up in ``bench_output.txt``.
"""

from __future__ import annotations

import os
import sys

import pytest

from repro.experiments import total_artifact_bytes
from repro.workloads.home_credit import generate_home_credit
from repro.workloads.openml import generate_credit_g

SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))

#: below this scale compute costs are too small for the paper's run-time
#: shapes to emerge; benchmarks still print their series but skip the
#: strict shape assertions
FULL_SCALE = SCALE >= 0.75


def scaled(value: int, minimum: int = 1) -> int:
    return max(minimum, int(value * SCALE))


_RESULTS_PATH = os.path.join(os.path.dirname(__file__), "bench_results.txt")
_results_initialized = False


def report(*lines: str) -> None:
    """Print paper-style result rows and append them to bench_results.txt.

    pytest captures even ``sys.__stdout__`` at the file-descriptor level
    unless ``-s`` is given, so the rows are additionally persisted to
    ``benchmarks/bench_results.txt``.
    """
    global _results_initialized
    mode = "a" if _results_initialized else "w"
    _results_initialized = True
    with open(_RESULTS_PATH, mode) as handle:
        for line in lines:
            sys.__stdout__.write(line + "\n")
            handle.write(line + "\n")
    sys.__stdout__.flush()


@pytest.fixture(scope="session")
def hc_sources():
    """Home Credit tables at benchmark scale."""
    return generate_home_credit(n_applications=scaled(1500, minimum=100), seed=42)


@pytest.fixture(scope="session")
def hc_total(hc_sources):
    """Total distinct artifact bytes of the 8 workloads (budget scaling)."""
    return total_artifact_bytes(hc_sources)


@pytest.fixture(scope="session")
def credit_sources():
    return generate_credit_g(n_rows=scaled(1000, minimum=100), seed=31)


@pytest.fixture(scope="session")
def materialization_result(hc_sources, hc_total):
    """Shared Figures 6+7 sweep (16 sequence runs; reused by both modules)."""
    from repro.experiments import fig6_fig7_materialization

    return fig6_fig7_materialization(
        hc_sources, hc_total, budgets_gb=(8.0, 16.0, 32.0, 64.0)
    )
