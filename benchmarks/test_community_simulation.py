"""Community simulation — the motivating example at population scale.

Not a paper figure, but the paper's headline narrative (Section 2/3.3):
with popular kernels re-run and modified thousands of times, the optimizer
saves a large fraction of the platform's total compute.  We simulate a
stream of repeat/modify/fresh events over the Kaggle workloads and compare
platform cost with and without the optimizer.
"""

from conftest import FULL_SCALE, report, scaled

from repro.experiments.simulation import EventMix, simulate_community
from repro.workloads.kaggle import KAGGLE_WORKLOADS


def test_community_event_stream(benchmark, hc_sources):
    published = [KAGGLE_WORKLOADS[1], KAGGLE_WORKLOADS[2], KAGGLE_WORKLOADS[3]]
    derived = {
        0: [KAGGLE_WORKLOADS[4], KAGGLE_WORKLOADS[5]],
        1: [KAGGLE_WORKLOADS[6], KAGGLE_WORKLOADS[8]],
        2: [KAGGLE_WORKLOADS[7]],
    }
    n_events = scaled(40, minimum=10)

    result = benchmark.pedantic(
        simulate_community,
        args=(published, derived, hc_sources, n_events),
        kwargs={"mix": EventMix(repeat=0.65, modify=0.30, fresh=0.05), "seed": 7},
        rounds=1,
        iterations=1,
    )

    kinds = {k: result.events.count(k) for k in ("repeat", "modify", "fresh")}
    report(
        "",
        f"== Community simulation: {n_events} user events over the Kaggle kernels ==",
        f"  event mix: {kinds}",
        f"  platform compute without optimizer: {result.baseline_total:.1f}s",
        f"  platform compute with optimizer:    {result.optimizer_total:.1f}s "
        f"({100 * result.saving_fraction:.0f}% saved)",
        f"  artifacts loaded {result.loaded_artifacts}, "
        f"operations executed {result.executed_operations}",
        "  paper: 'hundreds of hours' saved for 7000 re-runs of 3 kernels",
    )

    if FULL_SCALE:
        assert result.saving_fraction > 0.6, (
            "at population scale most compute must be served from the EG"
        )